// Agreement / validity / termination tests for the binary DBFT machine in
// isolation, driven through a deterministic message bus with crash and
// two-faced (equivocating) Byzantine behaviours.
#include "consensus/binary.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>
#include <vector>

namespace srbb::consensus {
namespace {

// A deterministic bus: broadcasts enqueue per-recipient deliveries which are
// drained FIFO. Byzantine nodes are modelled by injecting raw messages.
struct Bus {
  struct Delivery {
    std::uint32_t to;
    std::uint32_t from;
    enum Kind { kEst, kAux, kDecided } kind;
    std::uint32_t round;
    bool value;
  };

  explicit Bus(std::uint32_t n, std::uint32_t f) : n_(n), f_(f) {
    nodes_.resize(n);
    decided_.resize(n);
    decision_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      BinaryConsensus::Callbacks cb;
      cb.send_est = [this, i](std::uint32_t r, bool v) {
        enqueue_broadcast(i, Delivery::kEst, r, v);
        nodes_[i]->on_est(i, r, v);  // self-delivery
      };
      cb.send_aux = [this, i](std::uint32_t r, bool v) {
        enqueue_broadcast(i, Delivery::kAux, r, v);
        nodes_[i]->on_aux(i, r, v);
      };
      cb.send_decided = [this, i](bool v) {
        enqueue_broadcast(i, Delivery::kDecided, 0, v);
      };
      cb.send_decided_to = [this, i](std::uint32_t peer, bool v) {
        queue_.push_back(Delivery{peer, i, Delivery::kDecided, 0, v});
      };
      cb.on_decide = [this, i](bool v) {
        decided_[i] = true;
        decision_[i] = v;
      };
      nodes_[i] = std::make_unique<BinaryConsensus>(n, f, std::move(cb));
    }
  }

  void enqueue_broadcast(std::uint32_t from, Delivery::Kind kind,
                         std::uint32_t round, bool value) {
    for (std::uint32_t to = 0; to < n_; ++to) {
      if (to == from) continue;
      if (crashed_.size() > to && crashed_[to]) continue;
      queue_.push_back(Delivery{to, from, kind, round, value});
    }
  }

  void crash(std::uint32_t node) {
    crashed_.resize(n_, false);
    crashed_[node] = true;
  }

  void drain(std::size_t max_steps = 1'000'000) {
    std::size_t steps = 0;
    while (!queue_.empty() && steps++ < max_steps) {
      const Delivery d = queue_.front();
      queue_.pop_front();
      if (crashed_.size() > d.to && crashed_[d.to]) continue;
      BinaryConsensus& node = *nodes_[d.to];
      switch (d.kind) {
        case Delivery::kEst:
          node.on_est(d.from, d.round, d.value);
          break;
        case Delivery::kAux:
          node.on_aux(d.from, d.round, d.value);
          break;
        case Delivery::kDecided:
          node.on_decided(d.from, d.value);
          break;
      }
    }
    ASSERT_TRUE(queue_.empty()) << "message explosion / livelock";
  }

  std::uint32_t n_;
  std::uint32_t f_;
  std::vector<std::unique_ptr<BinaryConsensus>> nodes_;
  std::vector<bool> decided_;
  std::vector<bool> decision_;
  std::vector<bool> crashed_;
  std::deque<Delivery> queue_;
};

void expect_agreement(const Bus& bus, std::optional<bool> expected = {}) {
  std::optional<bool> value;
  for (std::uint32_t i = 0; i < bus.n_; ++i) {
    if (bus.crashed_.size() > i && bus.crashed_[i]) continue;
    EXPECT_TRUE(bus.decided_[i]) << "node " << i << " undecided";
    if (!bus.decided_[i]) continue;
    if (!value.has_value()) value = bus.decision_[i];
    EXPECT_EQ(bus.decision_[i], *value) << "disagreement at node " << i;
  }
  if (expected.has_value() && value.has_value()) {
    EXPECT_EQ(*value, *expected);
  }
}

struct ShapeParam {
  std::uint32_t n;
  std::uint32_t f;
};

class BinShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(BinShapes, UnanimousOneDecidesOne) {
  const auto [n, f] = GetParam();
  Bus bus{n, f};
  for (std::uint32_t i = 0; i < n; ++i) bus.nodes_[i]->start(true);
  bus.drain();
  expect_agreement(bus, true);
}

TEST_P(BinShapes, UnanimousZeroDecidesZero) {
  const auto [n, f] = GetParam();
  Bus bus{n, f};
  for (std::uint32_t i = 0; i < n; ++i) bus.nodes_[i]->start(false);
  bus.drain();
  expect_agreement(bus, false);
}

TEST_P(BinShapes, MixedInputsStillAgree) {
  const auto [n, f] = GetParam();
  Bus bus{n, f};
  for (std::uint32_t i = 0; i < n; ++i) bus.nodes_[i]->start(i % 2 == 0);
  bus.drain();
  expect_agreement(bus);
}

TEST_P(BinShapes, ToleratesCrashFaults) {
  const auto [n, f] = GetParam();
  Bus bus{n, f};
  for (std::uint32_t i = 0; i < f; ++i) bus.crash(i);  // f silent nodes
  for (std::uint32_t i = f; i < n; ++i) bus.nodes_[i]->start(true);
  bus.drain();
  expect_agreement(bus, true);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BinShapes,
                         ::testing::Values(ShapeParam{4, 1}, ShapeParam{7, 2},
                                           ShapeParam{10, 3},
                                           ShapeParam{16, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f);
                         });

TEST(BinaryConsensus, ValidityOnlyProposedValuesDecided) {
  // With unanimous correct input v, the only decidable value is v even when
  // a Byzantine node pushes the opposite: 2t+1 copies are needed to bind a
  // value, and only v has that many proposers.
  Bus bus{4, 1};
  // Node 3 is Byzantine: floods EST(0) at rounds 0..3 without joining.
  bus.crash(3);  // it ignores incoming traffic
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t to = 0; to < 3; ++to) {
      bus.queue_.push_back(Bus::Delivery{to, 3, Bus::Delivery::kEst, r, false});
    }
  }
  for (std::uint32_t i = 0; i < 3; ++i) bus.nodes_[i]->start(true);
  bus.drain();
  expect_agreement(bus, true);
}

TEST(BinaryConsensus, TwoFacedByzantineCannotSplitAgreement) {
  // Byzantine node 3 tells nodes {0} EST(1) and {1,2} EST(0) every round.
  Bus bus{4, 1};
  bus.crash(3);
  for (std::uint32_t r = 0; r < 6; ++r) {
    bus.queue_.push_back(Bus::Delivery{0, 3, Bus::Delivery::kEst, r, true});
    bus.queue_.push_back(Bus::Delivery{1, 3, Bus::Delivery::kEst, r, false});
    bus.queue_.push_back(Bus::Delivery{2, 3, Bus::Delivery::kEst, r, false});
    bus.queue_.push_back(Bus::Delivery{0, 3, Bus::Delivery::kAux, r, true});
    bus.queue_.push_back(Bus::Delivery{1, 3, Bus::Delivery::kAux, r, false});
  }
  bus.nodes_[0]->start(true);
  bus.nodes_[1]->start(false);
  bus.nodes_[2]->start(false);
  bus.drain();
  expect_agreement(bus);
}

TEST(BinaryConsensus, ForgedDecidedBelowThresholdIgnored) {
  Bus bus{4, 1};
  // A single (Byzantine) DECIDED(0) must not force a decision: threshold is
  // f+1 = 2.
  bus.nodes_[0]->on_decided(3, false);
  EXPECT_FALSE(bus.nodes_[0]->decided());
  // Proper run still decides 1.
  for (std::uint32_t i = 0; i < 4; ++i) bus.nodes_[i]->start(true);
  bus.drain();
  expect_agreement(bus, true);
}

TEST(BinaryConsensus, DecidedFastPathAtThreshold) {
  Bus bus{4, 1};
  bus.nodes_[0]->on_decided(1, true);
  bus.nodes_[0]->on_decided(2, true);  // f+1 = 2 matching decisions
  EXPECT_TRUE(bus.nodes_[0]->decided());
  EXPECT_TRUE(bus.nodes_[0]->decision());
}

TEST(BinaryConsensus, MixedDecidedValuesNeedPerValueThreshold) {
  Bus bus{4, 1};
  bus.nodes_[0]->on_decided(1, true);
  bus.nodes_[0]->on_decided(2, false);
  EXPECT_FALSE(bus.nodes_[0]->decided());
  bus.nodes_[0]->on_decided(3, false);
  EXPECT_TRUE(bus.nodes_[0]->decided());
  EXPECT_FALSE(bus.nodes_[0]->decision());
}

TEST(BinaryConsensus, StartIsIdempotent) {
  Bus bus{4, 1};
  for (std::uint32_t i = 0; i < 4; ++i) {
    bus.nodes_[i]->start(true);
    bus.nodes_[i]->start(false);  // second start ignored
  }
  bus.drain();
  expect_agreement(bus, true);
}

TEST(BinaryConsensus, DuplicateMessagesAreHarmless) {
  Bus bus{4, 1};
  for (std::uint32_t i = 0; i < 4; ++i) bus.nodes_[i]->start(true);
  bus.drain();
  expect_agreement(bus, true);
  // Replay EST floods after decision: no crash, no change.
  for (std::uint32_t r = 0; r < 3; ++r) {
    bus.nodes_[0]->on_est(1, r, true);
    bus.nodes_[0]->on_est(1, r, false);
  }
  EXPECT_TRUE(bus.nodes_[0]->decided());
  EXPECT_TRUE(bus.nodes_[0]->decision());
}

}  // namespace
}  // namespace srbb::consensus
