#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace srbb::crypto {
namespace {

BytesView sv(const std::string& s) {
  return BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// FIPS 180-4 known-answer tests.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash(BytesView{}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(sv("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hash(sv("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(sv(chunk));
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, twice";
  const Hash32 oneshot = Sha256::hash(sv(msg));
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(sv(msg.substr(0, split)));
    h.update(sv(msg.substr(split)));
    EXPECT_EQ(h.finish(), oneshot) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // Lengths around the 64-byte block and 56-byte padding boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(sv(msg));
    const Hash32 incr = a.finish();
    EXPECT_EQ(incr, Sha256::hash(sv(msg))) << len;
  }
}

// RFC 4231 test case 2 (HMAC-SHA-256, key "Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256(sv("Jefe"), sv("what do ya want for nothing?")).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const std::string long_key(200, 'k');
  const std::string msg = "payload";
  // Must not crash and must differ from a different key.
  const Hash32 a = hmac_sha256(sv(long_key), sv(msg));
  const Hash32 b = hmac_sha256(sv(long_key + "x"), sv(msg));
  EXPECT_NE(a, b);
}

TEST(Sha512, EmptyString) {
  const Hash64 h = Sha512::hash(BytesView{});
  EXPECT_EQ(to_hex(BytesView{h.data(), h.size()}),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  const Hash64 h = Sha512::hash(sv("abc"));
  EXPECT_EQ(to_hex(BytesView{h.data(), h.size()}),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const std::string msg(300, 'z');
  Sha512 h;
  h.update(sv(msg.substr(0, 100)));
  h.update(sv(msg.substr(100)));
  EXPECT_EQ(h.finish(), Sha512::hash(sv(msg)));
}

TEST(Sha512, BlockBoundaryLengths) {
  for (std::size_t len : {111u, 112u, 113u, 127u, 128u, 129u, 255u, 256u}) {
    const std::string msg(len, 'q');
    Sha512 a;
    a.update(sv(msg));
    EXPECT_EQ(a.finish(), Sha512::hash(sv(msg))) << len;
  }
}

}  // namespace
}  // namespace srbb::crypto
