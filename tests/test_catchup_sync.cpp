// Unit tests of the CatchUpSync state machine in isolation: sequential
// fetch, timeout/backoff/peer rotation, duplicate- and stale-response
// handling, and frontier detection. The callbacks are captured into local
// queues so the tests single-step the protocol without a network.
#include "srbb/sync.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace srbb::node {
namespace {

struct SyncHarness {
  struct SentRequest {
    std::uint32_t peer;
    std::uint64_t index;
  };

  CatchUpConfig config;
  std::vector<SentRequest> requests;
  std::vector<std::pair<SimDuration, std::function<void()>>> timers;
  std::vector<std::uint64_t> fetched;   // indices delivered via on_superblock
  std::vector<std::uint64_t> caught_up; // frontiers reported
  std::unique_ptr<CatchUpSync> sync;

  explicit SyncHarness(CatchUpConfig cfg = {}) : config(cfg) {
    CatchUpCallbacks cb;
    cb.send_to = [this](std::uint32_t peer, sim::MessagePtr msg) {
      const auto* req = dynamic_cast<const SyncRequestMsg*>(msg.get());
      ASSERT_NE(req, nullptr);
      requests.push_back({peer, req->index});
    };
    cb.set_timer = [this](SimDuration delay, std::function<void()> fn) {
      timers.emplace_back(delay, std::move(fn));
    };
    cb.on_superblock = [this](std::uint64_t index,
                              std::vector<txn::BlockPtr>) {
      fetched.push_back(index);
    };
    cb.on_caught_up = [this](std::uint64_t frontier) {
      caught_up.push_back(frontier);
    };
    sync = std::make_unique<CatchUpSync>(config, std::move(cb));
  }

  void reply(std::uint32_t from, std::uint64_t index, bool have,
             std::uint64_t height) {
    SyncResponseMsg msg;
    msg.index = index;
    msg.have = have;
    msg.height = height;
    sync->on_response(from, msg);
  }

  void fire_last_timer() {
    ASSERT_FALSE(timers.empty());
    auto fn = timers.back().second;
    fn();
  }
};

TEST(CatchUpSync, FetchesSequentiallyThenReportsFrontier) {
  SyncHarness h;
  h.sync->start(0);

  // Chain of three decided superblocks on the responders, frontier 3.
  for (std::uint64_t index = 0; index < 3; ++index) {
    ASSERT_EQ(h.requests.size(), index + 1);
    EXPECT_EQ(h.requests.back().index, index);
    h.reply(h.requests.back().peer, index, /*have=*/true, /*height=*/3);
  }
  EXPECT_TRUE(h.sync->active());
  ASSERT_EQ(h.requests.back().index, 3u);
  h.reply(h.requests.back().peer, 3, /*have=*/false, /*height=*/3);

  EXPECT_FALSE(h.sync->active());
  EXPECT_EQ(h.fetched, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(h.caught_up, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(h.sync->stats().superblocks_fetched, 3u);
  EXPECT_EQ(h.sync->stats().timeouts, 0u);
}

TEST(CatchUpSync, EmptyChainCatchesUpImmediately) {
  SyncHarness h;
  h.sync->start(0);
  h.reply(h.requests.back().peer, 0, /*have=*/false, /*height=*/0);
  EXPECT_FALSE(h.sync->active());
  EXPECT_TRUE(h.fetched.empty());
  EXPECT_EQ(h.caught_up, (std::vector<std::uint64_t>{0}));
}

TEST(CatchUpSync, TimeoutRotatesPeersWithExponentialBackoff) {
  CatchUpConfig cfg;
  cfg.n = 4;
  cfg.self = 1;
  cfg.request_timeout = millis(100);
  cfg.backoff_cap = 2;
  SyncHarness h{cfg};
  h.sync->start(0);

  // No peer ever answers: each timeout retries the same index against the
  // next peer in rank order (wrapping, skipping self) with doubled timeout
  // until the cap.
  std::vector<std::uint32_t> peers{h.requests.back().peer};
  std::vector<SimDuration> delays{h.timers.back().first};
  for (int retry = 0; retry < 5; ++retry) {
    h.fire_last_timer();
    peers.push_back(h.requests.back().peer);
    delays.push_back(h.timers.back().first);
    EXPECT_EQ(h.requests.back().index, 0u);  // still fetching index 0
  }
  EXPECT_EQ(peers, (std::vector<std::uint32_t>{2, 3, 0, 2, 3, 0}));
  EXPECT_EQ(delays[0], millis(100));
  EXPECT_EQ(delays[1], millis(200));
  EXPECT_EQ(delays[2], millis(400));
  EXPECT_EQ(delays[3], millis(400));  // capped at << backoff_cap
  EXPECT_EQ(h.sync->stats().timeouts, 5u);

  // A successful response resets the backoff for the next index.
  h.reply(h.requests.back().peer, 0, /*have=*/true, /*height=*/2);
  EXPECT_EQ(h.timers.back().first, millis(100));
}

TEST(CatchUpSync, StaleTimersAndDuplicateResponsesAreNoOps) {
  SyncHarness h;
  h.sync->start(0);
  const std::size_t timers_before = h.timers.size();

  h.reply(h.requests.back().peer, 0, /*have=*/true, /*height=*/2);
  // The timeout armed for the answered request must not fire a retry.
  ASSERT_GT(h.timers.size(), timers_before);
  h.timers[timers_before - 1].second();
  EXPECT_EQ(h.sync->stats().timeouts, 0u);

  // A duplicated delivery of the same response (fault injection) is stale:
  // the fetch frontier already advanced past it.
  const std::size_t fetched_before = h.fetched.size();
  h.reply(h.requests.back().peer, 0, /*have=*/true, /*height=*/2);
  EXPECT_EQ(h.fetched.size(), fetched_before);
  EXPECT_EQ(h.sync->stats().stale_responses, 1u);
  EXPECT_EQ(h.sync->next_index(), 1u);
}

TEST(CatchUpSync, LaggardPeerDoesNotEndSyncEarly) {
  SyncHarness h;
  h.sync->start(0);

  // First responder reports frontier 4 while serving index 0; a laggard that
  // is still at height 1 then claims not to have index 1. The sync must keep
  // rotating instead of trusting the laggard's frontier.
  h.reply(h.requests.back().peer, 0, /*have=*/true, /*height=*/4);
  const std::uint32_t laggard = h.requests.back().peer;
  h.reply(laggard, 1, /*have=*/false, /*height=*/1);
  EXPECT_TRUE(h.sync->active());
  EXPECT_TRUE(h.caught_up.empty());
  EXPECT_NE(h.requests.back().peer, laggard);  // rotated away
  EXPECT_EQ(h.requests.back().index, 1u);
  EXPECT_EQ(h.sync->target_height(), 4u);

  for (std::uint64_t index = 1; index < 4; ++index) {
    h.reply(h.requests.back().peer, index, /*have=*/true, /*height=*/4);
  }
  h.reply(h.requests.back().peer, 4, /*have=*/false, /*height=*/4);
  EXPECT_FALSE(h.sync->active());
  EXPECT_EQ(h.caught_up, (std::vector<std::uint64_t>{4}));
}

TEST(CatchUpSync, CancelAbortsAndAllowsRestart) {
  SyncHarness h;
  h.sync->start(0);
  h.sync->cancel();
  EXPECT_FALSE(h.sync->active());

  // Timers armed before the cancel are orphaned.
  const std::uint64_t timeouts_before = h.sync->stats().timeouts;
  h.fire_last_timer();
  EXPECT_EQ(h.sync->stats().timeouts, timeouts_before);

  // A fresh start() fetches again from the requested index.
  h.sync->start(0);
  EXPECT_TRUE(h.sync->active());
  EXPECT_EQ(h.requests.back().index, 0u);
}

}  // namespace
}  // namespace srbb::node
