// Tests for the EVM bytecode static analyzer (src/evm/analysis): the
// disassembler, CFG construction, the stack-interval fixpoint verdicts,
// min-gas bounds, the code-hash-keyed cache, and the three enforcement
// points (CREATE validation, deposit-stage validation, the eager min-gas
// gate).
#include "evm/analysis/analysis.hpp"

#include <gtest/gtest.h>

#include "crypto/keccak.hpp"
#include "evm/analysis/cache.hpp"
#include "evm/asm.hpp"
#include "evm/contracts.hpp"
#include "evm/interpreter.hpp"
#include "obs/metrics.hpp"
#include "txn/executor.hpp"
#include "txn/validation.hpp"

namespace srbb::evm::analysis {
namespace {

Bytes assemble_or_die(std::string_view source) {
  auto code = assemble(source);
  EXPECT_TRUE(code.is_ok()) << code.message();
  return code.value();
}

Bytes bytes_of(std::initializer_list<std::uint8_t> raw) { return Bytes{raw}; }

// ---------------------------------------------------------------- disasm --

TEST(Disasm, DecodesPushImmediates) {
  const Bytes code = bytes_of({0x60, 0x2a, 0x61, 0x01, 0x02, 0x00});
  const auto instrs = disassemble_code(BytesView{code});
  ASSERT_EQ(instrs.size(), 3u);
  EXPECT_EQ(instrs[0].pc, 0u);
  EXPECT_EQ(instrs[0].imm_size, 1u);
  EXPECT_EQ(instrs[0].immediate, U256{0x2a});
  EXPECT_EQ(instrs[1].pc, 2u);
  EXPECT_EQ(instrs[1].imm_size, 2u);
  EXPECT_EQ(instrs[1].immediate, U256{0x0102});
  EXPECT_EQ(instrs[2].pc, 5u);
  EXPECT_EQ(instrs[2].opcode, 0x00);
}

TEST(Disasm, TruncatedPushZeroPadsLikeTheInterpreter) {
  // PUSH2 with only one immediate byte: decoded as 0xab00, flagged.
  const Bytes code = bytes_of({0x61, 0xab});
  const auto instrs = disassemble_code(BytesView{code});
  ASSERT_EQ(instrs.size(), 1u);
  EXPECT_TRUE(instrs[0].truncated);
  EXPECT_EQ(instrs[0].immediate, U256{0xab00});
}

TEST(Disasm, BitmapMatchesManualScanOnContracts) {
  for (const Contract* c :
       {&counter_contract(), &exchange_contract(), &mobility_contract(),
        &ticketing_contract(), &staking_contract(), &token_contract()}) {
    for (const Bytes* code : {&c->runtime_code, &c->deploy_code}) {
      // Reference scan: the interpreter's historical per-frame loop.
      std::vector<bool> expected(code->size(), false);
      for (std::size_t i = 0; i < code->size(); ++i) {
        const std::uint8_t op = (*code)[i];
        if (op == 0x5b) expected[i] = true;
        if (op >= 0x60 && op <= 0x7f) i += static_cast<std::size_t>(op - 0x5f);
      }
      EXPECT_EQ(jumpdest_bitmap(BytesView{*code}), expected);
    }
  }
}

TEST(Disasm, JumpdestInsidePushImmediateIsNotValid) {
  // PUSH1 0x5b: the 0x5b byte is data, not a JUMPDEST.
  const Bytes code = bytes_of({0x60, 0x5b, 0x5b});
  const auto bitmap = jumpdest_bitmap(BytesView{code});
  ASSERT_EQ(bitmap.size(), 3u);
  EXPECT_FALSE(bitmap[1]);
  EXPECT_TRUE(bitmap[2]);
}

// ------------------------------------------------------------------- cfg --

TEST(Cfg, SplitsBlocksAtJumpdestsAndTerminators) {
  // PUSH1 5 JUMP / INVALID / JUMPDEST STOP
  const Bytes code = assemble_or_die("PUSH1 4 JUMP INVALID JUMPDEST STOP");
  const Cfg cfg = build_cfg(BytesView{code});
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].terminator, Terminator::kJump);
  EXPECT_TRUE(cfg.blocks[0].jump_resolved);
  EXPECT_EQ(cfg.blocks[0].jump_target, 4u);
  ASSERT_TRUE(cfg.blocks[0].jump_succ.has_value());
  EXPECT_EQ(*cfg.blocks[0].jump_succ, 2u);
  EXPECT_FALSE(cfg.blocks[0].fallthrough.has_value());
  EXPECT_EQ(cfg.blocks[1].terminator, Terminator::kInvalid);
  EXPECT_EQ(cfg.blocks[2].terminator, Terminator::kStop);
  ASSERT_EQ(cfg.jumpdest_blocks.size(), 1u);
  EXPECT_EQ(cfg.jumpdest_blocks[0], 2u);
}

TEST(Cfg, SummarizesStackEffects) {
  // PUSH1 1 PUSH1 2 ADD POP STOP: needed 0, delta 0, peak 2.
  const Bytes code = assemble_or_die("PUSH1 1 PUSH1 2 ADD POP STOP");
  const Cfg cfg = build_cfg(BytesView{code});
  ASSERT_EQ(cfg.blocks.size(), 1u);
  const BasicBlock& b = cfg.blocks[0];
  EXPECT_EQ(b.needed, 0u);
  EXPECT_EQ(b.delta, 0);
  EXPECT_EQ(b.peak, 2u);
  EXPECT_EQ(b.static_gas, 11u);  // 3 + 3 + 3 + 2 + 0
}

TEST(Cfg, ComputedJumpIsUnknownEdge) {
  const Bytes code =
      assemble_or_die("PUSH1 0 CALLDATALOAD JUMP JUMPDEST STOP");
  const Cfg cfg = build_cfg(BytesView{code});
  ASSERT_GE(cfg.blocks.size(), 2u);
  EXPECT_FALSE(cfg.blocks[0].jump_resolved);
  EXPECT_TRUE(cfg.blocks[0].unknown_jump);
}

TEST(Cfg, FallOffEndIsImplicitStop) {
  const Bytes code = assemble_or_die("PUSH1 1 POP");
  const Cfg cfg = build_cfg(BytesView{code});
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].terminator, Terminator::kFallOffEnd);
}

// -------------------------------------------------------------- verdicts --

TEST(Verdicts, EmptyCodeAccepts) {
  const AnalysisResult r = analyze(BytesView{});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.min_gas, 0u);
}

TEST(Verdicts, StraightLineAccepts) {
  const AnalysisResult r =
      analyze(BytesView{assemble_or_die("PUSH1 1 PUSH1 2 ADD POP STOP")});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.min_gas, 11u);
}

TEST(Verdicts, GuaranteedUnderflowRejects) {
  const AnalysisResult r = analyze(BytesView{bytes_of({0x01})});  // ADD
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kUnderflow);
  EXPECT_EQ(r.reject_pc, 0u);
}

TEST(Verdicts, EntryInvalidOpcodeRejects) {
  const AnalysisResult r = analyze(BytesView{bytes_of({0xfe})});
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kInvalidOpcode);
}

TEST(Verdicts, EntryUndefinedOpcodeRejects) {
  const AnalysisResult r = analyze(BytesView{bytes_of({0x0c})});
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kUndefinedOpcode);
}

TEST(Verdicts, StaticJumpToNonJumpdestRejects) {
  const AnalysisResult r =
      analyze(BytesView{assemble_or_die("PUSH1 3 JUMP STOP")});
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kBadJump);
}

TEST(Verdicts, TruncatedPushOnEntryPathRejects) {
  const AnalysisResult r = analyze(BytesView{bytes_of({0x61, 0xab})});
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kTruncatedPush);
}

TEST(Verdicts, GuaranteedOverflowRejects) {
  Bytes code;
  for (int i = 0; i < 1025; ++i) {
    code.push_back(0x60);  // PUSH1 0
    code.push_back(0x00);
  }
  code.push_back(0x00);  // STOP
  const AnalysisResult r = analyze(BytesView{code});
  EXPECT_EQ(r.verdict, Verdict::kReject);
  EXPECT_EQ(r.reject_reason, RejectReason::kOverflow);
}

TEST(Verdicts, UnreachableInvalidStillAccepts) {
  const AnalysisResult r =
      analyze(BytesView{assemble_or_die("PUSH1 4 JUMP INVALID JUMPDEST STOP")});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_FALSE(r.reachable_invalid);
  EXPECT_EQ(r.min_gas, 12u);  // 3 + 8 + 1 + 0
}

TEST(Verdicts, ReachableInvalidBehindBranchIsUnknown) {
  // Data-dependent branch into INVALID: neither provably safe nor doomed.
  const AnalysisResult r = analyze(BytesView{assemble_or_die(R"(
    PUSH1 0 CALLDATALOAD PUSH @bad JUMPI STOP
    bad: JUMPDEST INVALID
  )")});
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_TRUE(r.reachable_invalid);
}

TEST(Verdicts, ComputedJumpIsUnknown) {
  const AnalysisResult r = analyze(
      BytesView{assemble_or_die("PUSH1 0 CALLDATALOAD JUMP JUMPDEST STOP")});
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_jump_blocks, 1u);
}

TEST(Verdicts, InfiniteLoopHasNoSuccessfulPath) {
  // JUMPDEST PUSH @loop JUMP: never fails structurally, never succeeds.
  const AnalysisResult r = analyze(
      BytesView{assemble_or_die("loop: JUMPDEST PUSH @loop JUMP")});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.min_gas, AnalysisResult::kNoSuccessfulPath);
}

TEST(Verdicts, MinGasTakesTheCheapestSuccessPath) {
  // Fallthrough STOP costs 19; the branch to the expensive block costs more.
  const AnalysisResult r = analyze(BytesView{assemble_or_die(R"(
    PUSH1 0 CALLDATALOAD PUSH @slow JUMPI STOP
    slow: JUMPDEST PUSH1 1 PUSH1 2 ADD POP STOP
  )")});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.min_gas, 19u);  // 3 + 3 + 3 + 10 + 0
}

TEST(Verdicts, RevertOnlyCodeHasNoSuccessfulPath) {
  const AnalysisResult r =
      analyze(BytesView{assemble_or_die("PUSH1 0 PUSH1 0 REVERT")});
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_EQ(r.min_gas, AnalysisResult::kNoSuccessfulPath);
}

TEST(Verdicts, OversizeCodeIsConservativelyUnknown) {
  Bytes code(128 * 1024 + 1, 0x5b);  // all JUMPDESTs, over the cap
  const AnalysisResult r = analyze(BytesView{code});
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.jumpdests.size(), code.size());
}

TEST(Verdicts, ShippedContractsAllAccept) {
  for (const Contract* c :
       {&counter_contract(), &exchange_contract(), &mobility_contract(),
        &ticketing_contract(), &staking_contract(), &token_contract()}) {
    EXPECT_EQ(analyze(BytesView{c->runtime_code}).verdict, Verdict::kAccept);
    EXPECT_EQ(analyze(BytesView{c->deploy_code}).verdict, Verdict::kAccept);
  }
}

TEST(Verdicts, FingerprintIsDeterministic) {
  const Bytes code = token_contract().runtime_code;
  const AnalysisResult a = analyze(BytesView{code});
  const AnalysisResult b = analyze(BytesView{code});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Different code, different fingerprint (not a guarantee, but these two).
  const AnalysisResult c = analyze(BytesView{counter_contract().runtime_code});
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ----------------------------------------------------------------- cache --

TEST(Cache, HitsAfterFirstMiss) {
  AnalysisCache cache;
  const Bytes code = counter_contract().runtime_code;
  const Hash32 key = crypto::Keccak256::hash(BytesView{code});
  const auto first = cache.get(key, BytesView{code});
  const auto second = cache.get(key, BytesView{code});
  EXPECT_EQ(first.get(), second.get());  // same immutable result object
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, HashlessLookupStillCaches) {
  AnalysisCache cache;
  const Bytes code = counter_contract().runtime_code;
  const auto first = cache.get(BytesView{code});
  const auto second = cache.get(BytesView{code});
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, BoundedCapacitySkipsInsertWhenFull) {
  AnalysisCache cache{1};
  const Bytes a = counter_contract().runtime_code;
  const Bytes b = token_contract().runtime_code;
  (void)cache.get(BytesView{a});
  (void)cache.get(BytesView{b});  // not retained: cache stays at 1 entry
  EXPECT_EQ(cache.size(), 1u);
  (void)cache.get(BytesView{a});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, MetricsReconcileWithCounters) {
  obs::MetricsRegistry registry;
  AnalysisCache cache;
  cache.set_metrics(&registry);
  const Bytes code = staking_contract().runtime_code;
  for (int i = 0; i < 5; ++i) (void)cache.get(BytesView{code});
  EXPECT_EQ(registry.counter("analysis.cache.miss").value(), cache.misses());
  EXPECT_EQ(registry.counter("analysis.cache.hit").value(), cache.hits());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 4u);
  cache.set_metrics(nullptr);
}

// ----------------------------------------------------- CREATE enforcement --

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

struct EvmWorld {
  state::StateDB db;
  BlockContext block;
  TxContext tx;
  Address caller = addr(0xCA);

  EvmWorld() { db.add_balance(caller, U256{1'000'000}); }

  ExecResult create(const Bytes& init_code, bool validate) {
    // The txn layer bumps the sender nonce before the frame runs; doing the
    // same here keeps successive creates from colliding at one address.
    db.increment_nonce(caller);
    Evm evm{db, block, tx};
    evm.set_validate_code(validate);
    Message msg;
    msg.caller = caller;
    msg.is_create = true;
    msg.gas = 1'000'000;
    msg.data = init_code;
    return evm.execute(msg);
  }
};

TEST(CreateGate, RejectsDoomedInitCode) {
  EvmWorld w;
  const Bytes doomed = bytes_of({0x01});  // ADD on an empty stack
  const ExecResult r = w.create(doomed, /*validate=*/true);
  EXPECT_EQ(r.status, ExecStatus::kCodeRejected);
  EXPECT_EQ(r.gas_left, 0u);
}

TEST(CreateGate, ValidationOffRunsTheDoomedCode) {
  EvmWorld w;
  const Bytes doomed = bytes_of({0x01});
  const ExecResult r = w.create(doomed, /*validate=*/false);
  EXPECT_EQ(r.status, ExecStatus::kStackUnderflow);
}

TEST(CreateGate, RejectsDoomedRuntimeCodeAtDeposit) {
  EvmWorld w;
  // Init code is fine; the runtime it returns starts with INVALID.
  const Bytes init = make_deployer(BytesView{bytes_of({0xfe})});
  ASSERT_EQ(analyze(BytesView{init}).verdict, Verdict::kAccept);
  const ExecResult r = w.create(init, /*validate=*/true);
  EXPECT_EQ(r.status, ExecStatus::kCodeRejected);
  // Nothing deployed, no orphan account state.
  EXPECT_TRUE(w.db.code(r.created_address).empty());
}

TEST(CreateGate, ValidationOffDepositsTheDoomedRuntime) {
  EvmWorld w;
  const Bytes init = make_deployer(BytesView{bytes_of({0xfe})});
  const ExecResult r = w.create(init, /*validate=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(w.db.code(r.created_address), bytes_of({0xfe}));
}

TEST(CreateGate, AcceptsShippedDeployments) {
  EvmWorld w;
  for (const Contract* c :
       {&counter_contract(), &exchange_contract(), &token_contract()}) {
    const ExecResult r = w.create(c->deploy_code, /*validate=*/true);
    ASSERT_TRUE(r.ok()) << to_string(r.status);
    EXPECT_EQ(w.db.code(r.created_address), c->runtime_code);
  }
}

// -------------------------------------------------- transaction-level gate --

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

struct TxWorld {
  state::StateDB db;
  BlockContext block;
  txn::ExecutionConfig xcfg;
  txn::ValidationConfig vcfg;
  crypto::Identity alice = scheme().make_identity(1);

  TxWorld() { db.add_balance(alice.address(), U256{100'000'000}); }

  txn::Transaction deploy(const Bytes& init_code, std::uint64_t nonce) {
    txn::TxParams params;
    params.kind = txn::TxKind::kDeploy;
    params.nonce = nonce;
    params.data = init_code;
    return txn::make_signed(params, alice, scheme());
  }

  txn::Transaction invoke(const Address& to, std::uint64_t gas_limit,
                          std::uint64_t nonce) {
    txn::TxParams params;
    params.kind = txn::TxKind::kInvoke;
    params.nonce = nonce;
    params.to = to;
    params.gas_limit = gas_limit;
    return txn::make_signed(params, alice, scheme());
  }
};

TEST(TxGate, DeployOfDoomedCodeFailsButConsumesGas) {
  TxWorld w;
  const auto r =
      txn::apply_transaction(w.deploy(bytes_of({0x01}), 0), w.db, w.block,
                             w.xcfg);
  ASSERT_TRUE(r.is_ok()) << r.message();  // valid tx, failed frame
  EXPECT_FALSE(r.value().success);
  EXPECT_GT(r.value().gas_used, 0u);
}

TEST(TxGate, ValidateCodeOffRestoresOldBehaviour) {
  TxWorld w;
  w.xcfg.validate_code = false;
  const Bytes init = make_deployer(BytesView{bytes_of({0xfe})});
  const auto r = txn::apply_transaction(w.deploy(init, 0), w.db, w.block,
                                        w.xcfg);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_TRUE(r.value().success);
}

TEST(TxGate, EagerRejectsBudgetBelowStaticMinimum) {
  TxWorld w;
  const Address target = addr(0x42);
  // min_gas 11 (see StraightLineAccepts above).
  w.db.set_code(target, assemble_or_die("PUSH1 1 PUSH1 2 ADD POP STOP"));
  const std::uint64_t intrinsic = 21'000;  // no calldata
  const auto tight = w.invoke(target, intrinsic + 10, 0);
  const Status rejected = txn::eager_validate(tight, w.db, scheme(), w.vcfg);
  EXPECT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.message().find("static minimum"), std::string::npos);

  const auto enough = w.invoke(target, intrinsic + 11, 0);
  EXPECT_TRUE(txn::eager_validate(enough, w.db, scheme(), w.vcfg).is_ok());
}

TEST(TxGate, EagerRejectsCalleeWithNoSuccessfulPath) {
  TxWorld w;
  const Address target = addr(0x43);
  w.db.set_code(target, assemble_or_die("loop: JUMPDEST PUSH @loop JUMP"));
  const auto tx = w.invoke(target, 10'000'000, 0);
  EXPECT_FALSE(txn::eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(TxGate, NullCacheDisablesTheMinGasGate) {
  TxWorld w;
  const Address target = addr(0x44);
  w.db.set_code(target, assemble_or_die("loop: JUMPDEST PUSH @loop JUMP"));
  w.vcfg.analysis_cache = nullptr;
  const auto tx = w.invoke(target, 10'000'000, 0);
  EXPECT_TRUE(txn::eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(TxGate, TransfersBypassTheMinGasGate) {
  TxWorld w;
  // A plain transfer to a code-less address is untouched by check (vi).
  txn::TxParams params;
  params.to = addr(0x45);
  params.value = U256{5};
  params.gas_limit = 30'000;
  const auto tx = txn::make_signed(params, w.alice, scheme());
  EXPECT_TRUE(txn::eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

// ------------------------------------------------- interpreter cache path --

TEST(InterpreterCache, FramesShareOneAnalysisPerCodeHash) {
  EvmWorld w;
  AnalysisCache cache;
  const Address target = addr(0x50);
  w.db.set_code(target, counter_contract().runtime_code);

  Evm evm{w.db, w.block, w.tx};
  evm.set_analysis_cache(&cache);
  Message msg;
  msg.caller = w.caller;
  msg.to = target;
  msg.gas = 1'000'000;
  msg.data = encode_call("increment()", {});
  ASSERT_TRUE(evm.execute(msg).ok());
  const std::uint64_t misses_after_first = cache.misses();
  EXPECT_EQ(misses_after_first, 1u);

  // Second call in a fresh Evm: the shared cache serves the analysis.
  Evm evm2{w.db, w.block, w.tx};
  evm2.set_analysis_cache(&cache);
  ASSERT_TRUE(evm2.execute(msg).ok());
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(InterpreterCache, NullCacheFallsBackToLocalScan) {
  EvmWorld w;
  const Address target = addr(0x51);
  w.db.set_code(target, counter_contract().runtime_code);
  Evm evm{w.db, w.block, w.tx};
  evm.set_analysis_cache(nullptr);
  Message msg;
  msg.caller = w.caller;
  msg.to = target;
  msg.gas = 1'000'000;
  msg.data = encode_call("increment()", {});
  EXPECT_TRUE(evm.execute(msg).ok());
}

// The CLI and log lines render every enumerator through to_string(); pin the
// strings so a renamed enumerator cannot silently change tool output.
TEST(EnumNames, TerminatorStringsAreStable) {
  EXPECT_STREQ(to_string(Terminator::kFallThrough), "fallthrough");
  EXPECT_STREQ(to_string(Terminator::kJump), "jump");
  EXPECT_STREQ(to_string(Terminator::kJumpI), "jumpi");
  EXPECT_STREQ(to_string(Terminator::kStop), "stop");
  EXPECT_STREQ(to_string(Terminator::kReturn), "return");
  EXPECT_STREQ(to_string(Terminator::kRevert), "revert");
  EXPECT_STREQ(to_string(Terminator::kSelfdestruct), "selfdestruct");
  EXPECT_STREQ(to_string(Terminator::kInvalid), "invalid");
  EXPECT_STREQ(to_string(Terminator::kUndefined), "undefined");
  EXPECT_STREQ(to_string(Terminator::kFallOffEnd), "fall-off-end");
}

TEST(EnumNames, VerdictAndRejectReasonStringsAreStable) {
  EXPECT_STREQ(to_string(Verdict::kAccept), "accept");
  EXPECT_STREQ(to_string(Verdict::kUnknown), "unknown");
  EXPECT_STREQ(to_string(Verdict::kReject), "reject");
  EXPECT_STREQ(to_string(RejectReason::kNone), "none");
  EXPECT_STREQ(to_string(RejectReason::kUnderflow),
               "guaranteed stack underflow");
  EXPECT_STREQ(to_string(RejectReason::kOverflow),
               "guaranteed stack overflow");
  EXPECT_STREQ(to_string(RejectReason::kInvalidOpcode),
               "INVALID on entry path");
  EXPECT_STREQ(to_string(RejectReason::kUndefinedOpcode),
               "undefined opcode on entry path");
  EXPECT_STREQ(to_string(RejectReason::kBadJump),
               "static jump to non-JUMPDEST");
  EXPECT_STREQ(to_string(RejectReason::kTruncatedPush),
               "truncated PUSH on entry path");
}

TEST(Cache, ClearResetsEntriesAndCounters) {
  AnalysisCache cache;
  const Bytes code = assemble_or_die("PUSH1 0 POP STOP");
  const Hash32 key = crypto::Keccak256::hash(BytesView{code});
  (void)cache.get(key, BytesView{code});   // miss
  (void)cache.get(key, BytesView{code});   // hit
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Re-analysis after clear is a fresh miss.
  (void)cache.get(key, BytesView{code});
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, DetachingMetricsStopsCounting) {
  obs::MetricsRegistry registry;
  AnalysisCache cache;
  cache.set_metrics(&registry);
  const Bytes code = assemble_or_die("PUSH1 7 POP STOP");
  const Hash32 key = crypto::Keccak256::hash(BytesView{code});
  (void)cache.get(key, BytesView{code});
  EXPECT_EQ(registry.counter("analysis.cache.miss").value(), 1u);

  cache.set_metrics(nullptr);
  (void)cache.get(key, BytesView{code});   // hit, but detached
  EXPECT_EQ(registry.counter("analysis.cache.hit").value(), 0u);
  EXPECT_EQ(registry.counter("analysis.cache.miss").value(), 1u);
  EXPECT_EQ(cache.hits(), 1u);  // internal counters still advance
}

}  // namespace
}  // namespace srbb::evm::analysis
