#include "state/trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.hpp"

namespace srbb::state {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes{s.begin(), s.end()}; }

TEST(HexPrefix, YellowPaperExamples) {
  // Even extension: [1,2,3,4,5] is odd -> 0x11 0x23 0x45.
  const std::vector<std::uint8_t> odd{1, 2, 3, 4, 5};
  EXPECT_EQ(hex_prefix_encode(odd, false), (Bytes{0x11, 0x23, 0x45}));
  // Even extension: [0,1,2,3,4,5] -> 0x00 0x01 0x23 0x45.
  const std::vector<std::uint8_t> even{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(hex_prefix_encode(even, false), (Bytes{0x00, 0x01, 0x23, 0x45}));
  // Leaf with odd path [15,1,12,11,8] -> 0x3f 0x1c 0xb8.
  const std::vector<std::uint8_t> leaf_odd{0x0f, 1, 0x0c, 0x0b, 8};
  EXPECT_EQ(hex_prefix_encode(leaf_odd, true), (Bytes{0x3f, 0x1c, 0xb8}));
  // Leaf with even path [0,15,1,12,11,8] -> 0x20 0x0f 0x1c 0xb8.
  const std::vector<std::uint8_t> leaf_even{0, 0x0f, 1, 0x0c, 0x0b, 8};
  EXPECT_EQ(hex_prefix_encode(leaf_even, true),
            (Bytes{0x20, 0x0f, 0x1c, 0xb8}));
}

TEST(Nibbles, RoundTripExpansion) {
  const Bytes key{0xAB, 0xCD};
  const auto nibbles = to_nibbles(key);
  EXPECT_EQ(nibbles, (std::vector<std::uint8_t>{0xA, 0xB, 0xC, 0xD}));
}

TEST(Trie, EmptyBasics) {
  MerklePatriciaTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.get(bytes_of("missing")).has_value());
  // Canonical empty root is stable.
  EXPECT_EQ(MerklePatriciaTrie{}.root_hash(), trie.root_hash());
}

TEST(Trie, PutGetSingle) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("dog"), bytes_of("puppy"));
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_TRUE(trie.get(bytes_of("dog")).has_value());
  EXPECT_EQ(*trie.get(bytes_of("dog")), bytes_of("puppy"));
  EXPECT_FALSE(trie.get(bytes_of("do")).has_value());
  EXPECT_FALSE(trie.get(bytes_of("dogs")).has_value());
}

TEST(Trie, OverwriteKeepsSize) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("k"), bytes_of("v1"));
  trie.put(bytes_of("k"), bytes_of("v2"));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.get(bytes_of("k")), bytes_of("v2"));
}

TEST(Trie, PrefixKeysCoexist) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("do"), bytes_of("verb"));
  trie.put(bytes_of("dog"), bytes_of("puppy"));
  trie.put(bytes_of("doge"), bytes_of("coin"));
  trie.put(bytes_of("horse"), bytes_of("stallion"));
  EXPECT_EQ(trie.size(), 4u);
  EXPECT_EQ(*trie.get(bytes_of("do")), bytes_of("verb"));
  EXPECT_EQ(*trie.get(bytes_of("dog")), bytes_of("puppy"));
  EXPECT_EQ(*trie.get(bytes_of("doge")), bytes_of("coin"));
  EXPECT_EQ(*trie.get(bytes_of("horse")), bytes_of("stallion"));
}

TEST(Trie, EmptyValueIsPresent) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("k"), Bytes{});
  ASSERT_TRUE(trie.get(bytes_of("k")).has_value());
  EXPECT_TRUE(trie.get(bytes_of("k"))->empty());
}

TEST(Trie, EmptyKeySupported) {
  MerklePatriciaTrie trie;
  trie.put(BytesView{}, bytes_of("root-value"));
  trie.put(bytes_of("a"), bytes_of("x"));
  EXPECT_EQ(*trie.get(BytesView{}), bytes_of("root-value"));
  EXPECT_EQ(*trie.get(bytes_of("a")), bytes_of("x"));
  trie.erase(BytesView{});
  EXPECT_FALSE(trie.get(BytesView{}).has_value());
  EXPECT_EQ(*trie.get(bytes_of("a")), bytes_of("x"));
}

TEST(Trie, EraseCollapsesNodes) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("dog"), bytes_of("1"));
  trie.put(bytes_of("dot"), bytes_of("2"));
  const Hash32 with_both = trie.root_hash();
  trie.put(bytes_of("dove"), bytes_of("3"));
  trie.erase(bytes_of("dove"));
  // Removing the third key must collapse back to the two-key structure.
  EXPECT_EQ(trie.root_hash(), with_both);
  trie.erase(bytes_of("dot"));
  trie.erase(bytes_of("dog"));
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.root_hash(), MerklePatriciaTrie{}.root_hash());
}

TEST(Trie, EraseMissingIsNoop) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("a"), bytes_of("1"));
  const Hash32 root = trie.root_hash();
  trie.erase(bytes_of("b"));
  trie.erase(bytes_of("aa"));
  EXPECT_EQ(trie.root_hash(), root);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(Trie, RootIndependentOfInsertionOrder) {
  MerklePatriciaTrie forward;
  MerklePatriciaTrie backward;
  std::vector<std::pair<std::string, std::string>> kvs = {
      {"alpha", "1"}, {"beta", "2"}, {"al", "3"}, {"alphabet", "4"},
      {"b", "5"},     {"", "6"},     {"gamma", "7"}};
  for (const auto& [k, v] : kvs) forward.put(bytes_of(k), bytes_of(v));
  for (auto it = kvs.rbegin(); it != kvs.rend(); ++it) {
    backward.put(bytes_of(it->first), bytes_of(it->second));
  }
  EXPECT_EQ(forward.root_hash(), backward.root_hash());
}

TEST(Trie, RootSensitiveToValues) {
  MerklePatriciaTrie a;
  MerklePatriciaTrie b;
  a.put(bytes_of("key"), bytes_of("value-1"));
  b.put(bytes_of("key"), bytes_of("value-2"));
  EXPECT_NE(a.root_hash(), b.root_hash());
}

TEST(Trie, RootSensitiveToKeys) {
  MerklePatriciaTrie a;
  MerklePatriciaTrie b;
  a.put(bytes_of("key1"), bytes_of("v"));
  b.put(bytes_of("key2"), bytes_of("v"));
  EXPECT_NE(a.root_hash(), b.root_hash());
}

// Property test: the trie agrees with std::map under a long random
// put/get/erase workload, and the root only depends on contents.
class TrieRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieRandomOps, MatchesReferenceMap) {
  Rng rng{GetParam()};
  MerklePatriciaTrie trie;
  std::map<Bytes, Bytes> reference;

  const auto random_key = [&rng] {
    // Short keys collide on prefixes often, stressing branch/extension
    // handling.
    const std::size_t len = rng.next_below(5);
    Bytes key(len);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(4));
    return key;
  };

  for (int step = 0; step < 3000; ++step) {
    const Bytes key = random_key();
    const std::uint64_t action = rng.next_below(10);
    if (action < 6) {
      Bytes value(rng.next_below(8));
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.next_u64());
      trie.put(key, value);
      reference[key] = value;
    } else if (action < 9) {
      trie.erase(key);
      reference.erase(key);
    } else {
      const auto got = trie.get(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
      }
    }
    EXPECT_EQ(trie.size(), reference.size());
  }

  // Full sweep at the end.
  for (const auto& [key, value] : reference) {
    const auto got = trie.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }

  // Rebuild from scratch in sorted order: same root.
  MerklePatriciaTrie rebuilt;
  for (const auto& [key, value] : reference) rebuilt.put(key, value);
  EXPECT_EQ(rebuilt.root_hash(), trie.root_hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomOps,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 99ull));

TEST(Trie, LargeSequentialKeys) {
  MerklePatriciaTrie trie;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    Bytes key(4);
    put_be32(key.data(), i);
    trie.put(key, key);
  }
  EXPECT_EQ(trie.size(), 2000u);
  for (std::uint32_t i = 0; i < 2000; i += 97) {
    Bytes key(4);
    put_be32(key.data(), i);
    ASSERT_TRUE(trie.get(key).has_value());
    EXPECT_EQ(*trie.get(key), key);
  }
  // Erase half, verify the rest intact.
  for (std::uint32_t i = 0; i < 2000; i += 2) {
    Bytes key(4);
    put_be32(key.data(), i);
    trie.erase(key);
  }
  EXPECT_EQ(trie.size(), 1000u);
  for (std::uint32_t i = 1; i < 2000; i += 2) {
    Bytes key(4);
    put_be32(key.data(), i);
    EXPECT_TRUE(trie.get(key).has_value()) << i;
  }
}

TEST(Trie, MoveSemantics) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("a"), bytes_of("1"));
  MerklePatriciaTrie moved = std::move(trie);
  EXPECT_EQ(*moved.get(bytes_of("a")), bytes_of("1"));
}

// --- Known Ethereum roots ---------------------------------------------------
//
// With yellow-paper child inlining (nodes whose RLP encoding is shorter than
// 32 bytes embed verbatim in their parent), the trie is byte-compatible with
// Ethereum's unsecured trie. These vectors pin well-known roots from the
// ethereum/tests trie suite; a divergence means the node encoding regressed.

Hash32 pinned(const std::string& hex) {
  const auto raw = from_hex(hex);
  EXPECT_TRUE(raw.has_value() && raw->size() == Hash32::size());
  return Hash32{BytesView{*raw}};
}

TEST(TrieEthereumVectors, EmptyTrieRoot) {
  // keccak256(rlp("")) — the canonical empty sentinel.
  EXPECT_EQ(
      MerklePatriciaTrie{}.root_hash(),
      pinned("56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"));
  EXPECT_EQ(empty_trie_root(),
            MerklePatriciaTrie{}.root_hash());
}

TEST(TrieEthereumVectors, DogePuzzle) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("do"), bytes_of("verb"));
  trie.put(bytes_of("dog"), bytes_of("puppy"));
  trie.put(bytes_of("doge"), bytes_of("coin"));
  trie.put(bytes_of("horse"), bytes_of("stallion"));
  EXPECT_EQ(
      trie.root_hash(),
      pinned("5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"));
}

TEST(TrieEthereumVectors, FooFood) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("foo"), bytes_of("bar"));
  trie.put(bytes_of("food"), bytes_of("bass"));
  EXPECT_EQ(
      trie.root_hash(),
      pinned("17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3"));
}

TEST(TrieEthereumVectors, DeletionRestoresPinnedRoot) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("foo"), bytes_of("bar"));
  trie.put(bytes_of("food"), bytes_of("bass"));
  trie.put(bytes_of("fob"), bytes_of("x"));
  trie.erase(bytes_of("fob"));
  EXPECT_EQ(
      trie.root_hash(),
      pinned("17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3"));
  trie.erase(bytes_of("foo"));
  trie.erase(bytes_of("food"));
  EXPECT_EQ(trie.root_hash(), empty_trie_root());
}

// --- Incremental hashing ----------------------------------------------------

// Interleaving root_hash() calls with mutations exercises the memoized-ref
// path (later calls reuse refs of untouched subtrees); the root must always
// equal a from-scratch rebuild of the same contents.
TEST_P(TrieRandomOps, IncrementalRootMatchesRebuild) {
  Rng rng{GetParam() ^ 0x1c0de5ull};
  MerklePatriciaTrie trie;
  std::map<Bytes, Bytes> reference;
  for (int step = 0; step < 600; ++step) {
    const std::size_t len = rng.next_below(5);
    Bytes key(len);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(4));
    if (rng.next_below(10) < 7) {
      Bytes value(1 + rng.next_below(8));
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.next_u64());
      trie.put(key, value);
      reference[key] = value;
    } else {
      trie.erase(key);
      reference.erase(key);
    }
    if (step % 37 == 0) {
      MerklePatriciaTrie rebuilt;
      for (const auto& [k, v] : reference) rebuilt.put(k, v);
      ASSERT_EQ(trie.root_hash(), rebuilt.root_hash()) << "step " << step;
    }
  }
}

TEST(TrieNodeCache, RefsAccumulateAndInvalidate) {
  MerklePatriciaTrie trie;
  trie.put(bytes_of("do"), bytes_of("verb"));
  trie.put(bytes_of("dog"), bytes_of("puppy"));
  trie.put(bytes_of("doge"), bytes_of("coin"));
  EXPECT_EQ(trie.cache_stats().cached_refs, 0u);  // nothing hashed yet
  const Hash32 root = trie.root_hash();
  const std::size_t warm = trie.cache_stats().cached_refs;
  EXPECT_GT(warm, 0u);
  // A repeat hash touches nothing new.
  EXPECT_EQ(trie.root_hash(), root);
  EXPECT_EQ(trie.cache_stats().cached_refs, warm);
  // A mutation invalidates only the touched path, and re-hashing re-warms.
  trie.put(bytes_of("doge"), bytes_of("memecoin"));
  EXPECT_LT(trie.cache_stats().cached_refs, warm);
  trie.root_hash();
  EXPECT_GE(trie.cache_stats().cached_refs, warm);
}

TEST(TrieNodeCache, BoundedPoolDropsAndRecovers) {
  MerklePatriciaTrie bounded;
  bounded.set_node_cache_limit(8);
  MerklePatriciaTrie unbounded;
  for (std::uint32_t i = 0; i < 500; ++i) {
    Bytes key(4);
    put_be32(key.data(), i * 2654435761u);  // scattered keys -> wide trie
    bounded.put(key, key);
    unbounded.put(key, key);
    if (i % 50 == 0) {
      ASSERT_EQ(bounded.root_hash(), unbounded.root_hash());
    }
  }
  EXPECT_EQ(bounded.root_hash(), unbounded.root_hash());
  // The pool overflowed at least once and stayed within its bound after the
  // last drop-and-rewarm cycle... the bound is checked before hashing, so
  // post-hash occupancy is one full rewarm.
  EXPECT_GT(bounded.cache_stats().full_drops, 0u);
  EXPECT_EQ(unbounded.cache_stats().full_drops, 0u);
}

}  // namespace
}  // namespace srbb::state
