// Adversarial tests for true batch ed25519 verification: the multi-scalar
// combined equation with deterministic bisection must return results
// positionally identical to batch_verify_sequential on every composition —
// single bad items anywhere in the batch, all-bad batches, malleable and
// non-canonical encodings — and every BatchVerifier strategy must agree.
#include "crypto/batch.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/u256.hpp"
#include "crypto/ed25519.hpp"

namespace srbb::crypto {
namespace {

const SignatureScheme& scheme() { return SignatureScheme::ed25519(); }

struct Batch {
  std::vector<Bytes> messages;  // storage the item views alias
  std::vector<BatchVerifyItem> items;

  void add(std::uint64_t signer, const std::string& text) {
    const Identity identity = scheme().make_identity(signer);
    messages.push_back(Bytes(text.begin(), text.end()));
    BatchVerifyItem item;
    item.message = BytesView{messages.back()};
    item.signature = scheme().sign(identity, BytesView{messages.back()});
    item.public_key = identity.public_key;
    items.push_back(item);
  }
};

std::vector<bool> sequential(const Batch& batch) {
  return batch_verify_sequential(scheme(), batch.items);
}

/// Every strategy — including the shared multi-scalar one with its
/// bisection fallback — must agree with the sequential reference bit for
/// bit.
void expect_all_strategies_match(const Batch& batch,
                                 const std::vector<bool>& want) {
  EXPECT_EQ(sequential(batch), want);
  EXPECT_EQ(scheme().verify_batch(batch.items), want);
  ThreadPool pool(4);
  const SequentialBatchVerifier seq;
  const ThreadedBatchVerifier threaded(pool, /*min_parallel=*/0);
  const SharedBatchVerifier shared;
  const ThreadedSharedBatchVerifier threaded_shared(pool, /*chunk_size=*/3,
                                                    /*min_parallel=*/0);
  const BatchVerifier* verifiers[] = {&seq, &threaded, &shared,
                                      &threaded_shared};
  for (const BatchVerifier* verifier : verifiers) {
    EXPECT_EQ(verifier->verify(scheme(), batch.items), want)
        << verifier->name();
  }
}

Batch good_batch(std::size_t n) {
  Batch batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.add(i + 1, "message " + std::to_string(i));
  }
  return batch;
}

TEST(BatchVerifyAdversarial, EmptyBatch) {
  Batch batch;
  expect_all_strategies_match(batch, {});
}

TEST(BatchVerifyAdversarial, SingletonGoodAndBad) {
  Batch good = good_batch(1);
  expect_all_strategies_match(good, {true});
  Batch bad = good_batch(1);
  bad.items[0].signature[3] ^= 1;
  expect_all_strategies_match(bad, {false});
}

TEST(BatchVerifyAdversarial, AllGood) {
  expect_all_strategies_match(good_batch(9), std::vector<bool>(9, true));
}

TEST(BatchVerifyAdversarial, OneBadAtEveryPosition) {
  // The bisection must isolate a single corrupted item wherever it sits —
  // first, last, and every interior index (covering both halves at every
  // split depth of an 8-item batch).
  for (std::size_t bad = 0; bad < 8; ++bad) {
    Batch batch = good_batch(8);
    batch.items[bad].signature[17] ^= 0x40;
    std::vector<bool> want(8, true);
    want[bad] = false;
    expect_all_strategies_match(batch, want);
  }
}

TEST(BatchVerifyAdversarial, TwoBadInOppositeHalves) {
  Batch batch = good_batch(8);
  batch.items[1].signature[0] ^= 1;
  batch.items[6].signature[0] ^= 1;
  std::vector<bool> want(8, true);
  want[1] = want[6] = false;
  expect_all_strategies_match(batch, want);
}

TEST(BatchVerifyAdversarial, AllBad) {
  Batch batch = good_batch(7);
  for (auto& item : batch.items) item.signature[9] ^= 1;
  expect_all_strategies_match(batch, std::vector<bool>(7, false));
}

TEST(BatchVerifyAdversarial, WrongKeyAndWrongMessage) {
  Batch batch = good_batch(6);
  // Swap two public keys: both items fail, everything else passes.
  std::swap(batch.items[0].public_key, batch.items[5].public_key);
  // Tamper one message (storage stays alive; the view still aliases it).
  batch.messages[2][0] ^= 0xff;
  std::vector<bool> want(6, true);
  want[0] = want[2] = want[5] = false;
  expect_all_strategies_match(batch, want);
}

TEST(BatchVerifyAdversarial, MalleableScalarRejected) {
  // s' = s + L is the classic malleability vector: it satisfies the curve
  // equation but fails the canonical s < L check, so single verify rejects
  // it and the batch path must too (it never reaches the combined
  // equation — the precheck excludes the item deterministically).
  const U256 kL{0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0,
                0x1000000000000000ULL};
  Batch batch = good_batch(5);
  std::uint8_t* s_le = batch.items[2].signature.data() + 32;
  std::uint8_t be[32];
  for (int i = 0; i < 32; ++i) be[i] = s_le[31 - i];
  const U256 sum = U256::from_be(BytesView{be, 32}) + kL;  // s + L < 2^256
  sum.to_be(be);
  for (int i = 0; i < 32; ++i) s_le[i] = be[31 - i];
  std::vector<bool> want(5, true);
  want[2] = false;
  expect_all_strategies_match(batch, want);
}

TEST(BatchVerifyAdversarial, NonCanonicalPointEncodings) {
  Batch batch = good_batch(4);
  // R bytes that decode to no curve point (all 0xff: y >= p with high bit as
  // sign — decompression fails).
  for (std::size_t i = 0; i < 32; ++i) batch.items[1].signature[i] = 0xff;
  // Public key that is not a curve point either.
  for (std::size_t i = 0; i < 31; ++i) batch.items[3].public_key[i] = 0xff;
  batch.items[3].public_key[31] = 0x7f;
  std::vector<bool> want(4, true);
  want[1] = want[3] = false;
  expect_all_strategies_match(batch, want);
}

TEST(BatchVerifyAdversarial, DeterministicAcrossRuns) {
  Batch batch = good_batch(8);
  batch.items[3].signature[1] ^= 1;
  batch.items[4].public_key[0] ^= 1;
  const std::vector<bool> first = scheme().verify_batch(batch.items);
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(scheme().verify_batch(batch.items), first);
  }
  EXPECT_EQ(first, sequential(batch));
}

TEST(BatchVerifyAdversarial, LargeMixedBatch) {
  Batch batch = good_batch(64);
  std::vector<bool> want(64, true);
  for (std::size_t i = 0; i < 64; i += 7) {
    batch.items[i].signature[i % 64] ^= 1;
    want[i] = false;
  }
  expect_all_strategies_match(batch, want);
}

TEST(BatchVerifyAdversarial, FastSimSchemeBatchesToo) {
  // The sim-speed scheme's default verify_batch (a plain loop) must honour
  // the same contract, so pipeline tests over fast_sim stay meaningful.
  const SignatureScheme& fast = SignatureScheme::fast_sim();
  std::vector<Bytes> messages;
  std::vector<BatchVerifyItem> items;
  for (std::size_t i = 0; i < 6; ++i) {
    const Identity identity = fast.make_identity(i + 1);
    messages.push_back(Bytes{static_cast<std::uint8_t>(i), 0xab});
    BatchVerifyItem item;
    item.message = BytesView{messages.back()};
    item.signature = fast.sign(identity, BytesView{messages.back()});
    item.public_key = identity.public_key;
    items.push_back(item);
  }
  items[4].signature[0] ^= 1;
  std::vector<bool> want(6, true);
  want[4] = false;
  EXPECT_EQ(fast.verify_batch(items), want);
  EXPECT_EQ(batch_verify_sequential(fast, items), want);
}

}  // namespace
}  // namespace srbb::crypto
