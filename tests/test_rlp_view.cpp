// Differential and lifetime tests for the zero-copy RLP decoder: decode_view
// must accept exactly what decode accepts, report identical error strings,
// produce an identical tree, and hand out views that alias the wire buffer
// instead of copying it.
#include "codec/rlp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"

namespace srbb::rlp {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes{s.begin(), s.end()}; }

// Structural equality of a copying Item and a materialized view tree.
void expect_same_tree(const Item& a, const Item& b, const std::string& where) {
  ASSERT_EQ(a.is_list, b.is_list) << where;
  EXPECT_EQ(a.payload, b.payload) << where;
  ASSERT_EQ(a.items.size(), b.items.size()) << where;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    expect_same_tree(a.items[i], b.items[i],
                     where + "[" + std::to_string(i) + "]");
  }
}

// Both decoders over the same wire bytes: same verdict, same error string,
// same tree.
void expect_differential(BytesView wire) {
  const auto copied = decode(wire);
  ViewDoc doc;
  const auto viewed = decode_view(wire, doc);
  ASSERT_EQ(copied.is_ok(), viewed.is_ok());
  if (!copied.is_ok()) {
    EXPECT_EQ(copied.status().message(), viewed.status().message());
    return;
  }
  expect_same_tree(copied.value(), viewed.value().materialize(), "root");
}

TEST(RlpView, MatchesCopyingDecoderOnValidInputs) {
  expect_differential(encode_bytes(BytesView{}));
  expect_differential(encode_bytes(bytes_of("dog")));
  expect_differential(encode_bytes(Bytes(1000, 0xab)));
  expect_differential(encode_u64(0));
  expect_differential(encode_u64(0xdeadbeef));
  expect_differential(encode_list({}));
  expect_differential(encode_list({encode_bytes(bytes_of("cat")),
                                   encode_list({encode_u64(7)}),
                                   encode_bytes(BytesView{})}));
  // Deeply nested but within the cap.
  Bytes nested = encode_bytes(bytes_of("x"));
  for (int i = 0; i < 100; ++i) nested = encode_list({nested});
  expect_differential(nested);
}

TEST(RlpView, MatchesCopyingDecoderOnMalformedInputs) {
  expect_differential(BytesView{});                       // empty input
  expect_differential(Bytes{0x81, 0x05});                 // non-canonical single byte
  expect_differential(Bytes{0x83, 'd', 'o'});             // truncated string
  expect_differential(Bytes{0xb8});                       // truncated length
  expect_differential(Bytes{0xb8, 0x01, 0x61});           // non-canonical long form
  expect_differential(Bytes{0xb8, 0x00});                 // leading zero length
  expect_differential(Bytes{0xc2, 0x81});                 // truncated inside list body
  expect_differential(Bytes{0xc1, 0xc2, 0x00});           // child overruns body
  expect_differential(Bytes{0x00, 0x00});                 // trailing bytes
  Bytes deep;
  for (int i = 0; i < 600; ++i) deep.push_back(0xc1);     // nesting too deep
  deep.push_back(0x00);
  expect_differential(deep);
}

TEST(RlpView, RandomizedDifferential) {
  Rng rng{0x5eedbeef};
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.next_range(0, 40);
    Bytes wire(len);
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_range(0, 255));
    // Bias toward valid-ish prefixes so both branches get exercised.
    if (!wire.empty() && round % 2 == 0) {
      wire[0] = static_cast<std::uint8_t>(0xc0 + (wire.size() - 1));
    }
    expect_differential(wire);
  }
}

TEST(RlpView, PayloadsAliasTheWireBuffer) {
  const Bytes wire = encode_list(
      {encode_bytes(bytes_of("hello")), encode_bytes(Bytes(60, 0x7e))});
  ViewDoc doc;
  const auto root = decode_view(wire, doc);
  ASSERT_TRUE(root.is_ok());
  const ItemView list = root.value();
  ASSERT_TRUE(list.is_list());
  ASSERT_EQ(list.size(), 2u);
  for (std::size_t i = 0; i < list.size(); ++i) {
    const BytesView payload = list.child(i).payload();
    EXPECT_GE(payload.data(), wire.data());
    EXPECT_LE(payload.data() + payload.size(), wire.data() + wire.size());
  }
  // The list body is the wire slice between the header and the end.
  const BytesView body = list.list_body();
  EXPECT_EQ(body.data() + body.size(), wire.data() + wire.size());
}

TEST(RlpView, IntegerAccessorsMatchItem) {
  const Bytes wire = encode_list({encode_u64(0), encode_u64(77),
                                  encode_u256(U256::max()),
                                  encode_bytes(Bytes{0x00, 0x01}),
                                  encode_list({})});
  const auto copied = decode(wire);
  ViewDoc doc;
  const auto viewed = decode_view(wire, doc);
  ASSERT_TRUE(copied.is_ok());
  ASSERT_TRUE(viewed.is_ok());
  for (std::size_t i = 0; i < copied.value().items.size(); ++i) {
    const auto a64 = copied.value().items[i].as_u64();
    const auto b64 = viewed.value().child(i).as_u64();
    ASSERT_EQ(a64.is_ok(), b64.is_ok()) << i;
    if (a64.is_ok()) {
      EXPECT_EQ(a64.value(), b64.value()) << i;
    } else {
      EXPECT_EQ(a64.status().message(), b64.status().message()) << i;
    }
    const auto a256 = copied.value().items[i].as_u256();
    const auto b256 = viewed.value().child(i).as_u256();
    ASSERT_EQ(a256.is_ok(), b256.is_ok()) << i;
    if (a256.is_ok()) {
      EXPECT_EQ(a256.value(), b256.value()) << i;
    }
  }
}

TEST(RlpView, ArenaReuseAcrossFrames) {
  ViewDoc doc;
  const Bytes big = encode_list({encode_bytes(Bytes(100, 1)),
                                 encode_list({encode_u64(1), encode_u64(2)}),
                                 encode_bytes(bytes_of("tail"))});
  ASSERT_TRUE(decode_view(big, doc).is_ok());
  const std::size_t nodes_big = doc.node_count();
  EXPECT_EQ(nodes_big, 6u);  // list + string + inner list + 2 ints + string

  // A smaller frame reuses the arena; node count reflects the new frame only.
  const Bytes small = encode_bytes(bytes_of("x"));
  const auto root = decode_view(small, doc);
  ASSERT_TRUE(root.is_ok());
  EXPECT_EQ(doc.node_count(), 1u);
  EXPECT_EQ(root.value().payload().size(), 1u);

  // A failed decode leaves the doc reusable.
  EXPECT_FALSE(decode_view(Bytes{0x83, 'd'}, doc).is_ok());
  ASSERT_TRUE(decode_view(big, doc).is_ok());
  EXPECT_EQ(doc.node_count(), nodes_big);
}

TEST(RlpView, SiblingWalkMatchesIndexedAccess) {
  std::vector<Bytes> encoded;
  for (std::uint64_t i = 0; i < 30; ++i) encoded.push_back(encode_u64(i * 3));
  const Bytes wire = encode_list(encoded);
  ViewDoc doc;
  const auto root = decode_view(wire, doc);
  ASSERT_TRUE(root.is_ok());
  ItemView walker = root.value().child(0);
  for (std::size_t i = 0; i < root.value().size(); ++i) {
    EXPECT_EQ(walker.as_u64().value(), i * 3);
    EXPECT_EQ(walker.as_u64().value(), root.value().child(i).as_u64().value());
    walker = walker.next_sibling();
  }
}

}  // namespace
}  // namespace srbb::rlp
