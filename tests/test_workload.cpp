#include "diablo/workload.hpp"

#include <gtest/gtest.h>

namespace srbb::diablo {
namespace {

TEST(Workload, NasdaqMatchesPublishedStats) {
  const WorkloadSpec w = WorkloadSpec::nasdaq();
  EXPECT_EQ(w.rates_per_second.size(), 180u);  // 3 minutes
  EXPECT_NEAR(w.average_tps(), 168.0, 1.0);
  EXPECT_NEAR(w.peak_tps(), 19'800.0, 1.0);
  EXPECT_EQ(w.shape, TxShape::kExchangeTrade);
}

TEST(Workload, UberMatchesPublishedStats) {
  const WorkloadSpec w = WorkloadSpec::uber();
  EXPECT_EQ(w.rates_per_second.size(), 120u);  // 2 minutes
  EXPECT_NEAR(w.average_tps(), 852.0, 2.0);
  EXPECT_LE(w.peak_tps(), 901.0);
  EXPECT_GE(w.peak_tps(), 890.0);
  EXPECT_EQ(w.shape, TxShape::kMobilityRide);
}

TEST(Workload, FifaMatchesPublishedStats) {
  const WorkloadSpec w = WorkloadSpec::fifa();
  EXPECT_EQ(w.rates_per_second.size(), 180u);
  EXPECT_NEAR(w.average_tps(), 3483.0, 5.0);
  EXPECT_NEAR(w.peak_tps(), 5305.0, 120.0);
  EXPECT_EQ(w.shape, TxShape::kTicketBuy);
}

TEST(Workload, ConstantIsFlat) {
  const WorkloadSpec w = WorkloadSpec::constant("flat", 100.0, 10);
  EXPECT_EQ(w.total_txs(), 1000u);
  EXPECT_DOUBLE_EQ(w.peak_tps(), 100.0);
  EXPECT_EQ(w.duration(), seconds(10));
}

TEST(Workload, ScaledPreservesShape) {
  const WorkloadSpec w = WorkloadSpec::fifa().scaled(0.1);
  EXPECT_NEAR(w.average_tps(), 348.3, 2.0);
  EXPECT_NEAR(w.peak_tps(), 530.5, 15.0);
  EXPECT_EQ(w.duration(), WorkloadSpec::fifa().duration());
}

TEST(Schedule, CountMatchesTotal) {
  const WorkloadSpec w = WorkloadSpec::constant("flat", 50.0, 4);
  const auto schedule = send_schedule(w);
  EXPECT_EQ(schedule.size(), w.total_txs());
}

TEST(Schedule, TimesAreOrderedAndWithinDuration) {
  const WorkloadSpec w = WorkloadSpec::uber();
  const auto schedule = send_schedule(w);
  EXPECT_EQ(schedule.size(), w.total_txs());
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1], schedule[i]);
  }
  EXPECT_LT(schedule.back(), w.duration());
}

TEST(Schedule, FractionalRatesAccumulate) {
  // 0.5 TPS over 10 s must yield ~5 sends, not 0.
  const WorkloadSpec w = WorkloadSpec::constant("slow", 0.5, 10);
  EXPECT_EQ(send_schedule(w).size(), 5u);
}

TEST(TraceCsv, RoundTripAllBuiltins) {
  for (const WorkloadSpec& w :
       {WorkloadSpec::nasdaq(), WorkloadSpec::uber(), WorkloadSpec::fifa()}) {
    auto back = from_csv(to_csv(w));
    ASSERT_TRUE(back.is_ok()) << back.message();
    EXPECT_EQ(back.value().name, w.name);
    EXPECT_EQ(back.value().shape, w.shape);
    ASSERT_EQ(back.value().rates_per_second.size(), w.rates_per_second.size());
    for (std::size_t s = 0; s < w.rates_per_second.size(); ++s) {
      EXPECT_NEAR(back.value().rates_per_second[s], w.rates_per_second[s],
                  1e-4);
    }
  }
}

TEST(TraceCsv, RejectsMalformed) {
  EXPECT_FALSE(from_csv("").is_ok());
  EXPECT_FALSE(from_csv("second,rate\n").is_ok());      // no rows
  EXPECT_FALSE(from_csv("0,5\n1,6\n").is_ok());          // missing header
  EXPECT_FALSE(from_csv("second,rate\n0,-5\n").is_ok()); // negative rate
  EXPECT_FALSE(from_csv("second,rate\nbroken\n").is_ok());
  EXPECT_FALSE(from_csv("# shape=9\nsecond,rate\n0,1\n").is_ok());
}

TEST(TraceCsv, CustomTraceParses) {
  const auto w = from_csv("# name=mytrace shape=1\nsecond,rate\n0,10\n1,20\n");
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value().name, "mytrace");
  EXPECT_EQ(w.value().shape, TxShape::kExchangeTrade);
  EXPECT_EQ(w.value().total_txs(), 30u);
}

TEST(Schedule, SpikeSecondIsDense) {
  const WorkloadSpec w = WorkloadSpec::nasdaq();
  const auto schedule = send_schedule(w);
  std::uint64_t in_spike = 0;
  for (const SimTime t : schedule) {
    if (t >= seconds(60) && t < seconds(61)) ++in_spike;
  }
  EXPECT_NEAR(static_cast<double>(in_spike), 19'800.0, 2.0);
}

}  // namespace
}  // namespace srbb::diablo
