#include "srbb/load_balancer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace srbb::node {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

struct Recorder : sim::SimNode {
  using sim::SimNode::SimNode;
  void handle_message(sim::NodeId from, const sim::MessagePtr& message) override {
    if (const auto* tx = dynamic_cast<const ClientTxMsg*>(message.get())) {
      received.push_back(tx->tx->hash);
      last_from = from;
    }
    if (const auto* ack = dynamic_cast<const CommitAckMsg*>(message.get())) {
      acks.push_back(ack->tx_hash);
    }
  }
  std::vector<Hash32> received;
  std::vector<Hash32> acks;
  sim::NodeId last_from = 0;
};

txn::TxPtr make_tx(std::uint64_t nonce) {
  txn::TxParams params;
  params.nonce = nonce;
  return txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(1), scheme()));
}

struct Fixture {
  sim::Simulation sim;
  sim::Network net{sim, sim::NetworkConfig{}};
  std::vector<std::unique_ptr<Recorder>> validators;  // ids 0..3
  std::unique_ptr<LoadBalancerNode> balancer;         // id 4
  std::unique_ptr<Recorder> client;                   // id 5

  Fixture() {
    for (sim::NodeId i = 0; i < 4; ++i) {
      validators.push_back(std::make_unique<Recorder>(sim, i, 0u));
      net.attach(validators.back().get());
    }
    balancer = std::make_unique<LoadBalancerNode>(sim, 4, 0u, 4, 9);
    net.attach(balancer.get());
    client = std::make_unique<Recorder>(sim, 5, 0u);
    net.attach(client.get());
  }
};

TEST(LoadBalancer, SpreadsAcrossValidators) {
  Fixture f;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto msg = std::make_shared<ClientTxMsg>();
    msg->tx = make_tx(i);
    f.client->send(4, msg);
  }
  f.sim.run_until_idle();
  EXPECT_EQ(f.balancer->forwarded(), 64u);
  std::size_t total = 0;
  std::size_t nonempty = 0;
  for (const auto& validator : f.validators) {
    total += validator->received.size();
    nonempty += validator->received.empty() ? 0 : 1;
  }
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(nonempty, 4u);  // random spread touches every validator
}

TEST(LoadBalancer, RelaysAcksBackToTheClient) {
  Fixture f;
  const txn::TxPtr tx = make_tx(0);
  auto msg = std::make_shared<ClientTxMsg>();
  msg->tx = tx;
  f.client->send(4, msg);
  f.sim.run_until_idle();
  // Whichever validator got it acks through the balancer.
  sim::NodeId holder = 0;
  for (sim::NodeId i = 0; i < 4; ++i) {
    if (!f.validators[i]->received.empty()) holder = i;
  }
  auto ack = std::make_shared<CommitAckMsg>();
  ack->tx_hash = tx->hash;
  ack->executed_ok = true;
  f.validators[holder]->send(4, ack);
  f.sim.run_until_idle();
  ASSERT_EQ(f.client->acks.size(), 1u);
  EXPECT_EQ(f.client->acks[0], tx->hash);
}

TEST(LoadBalancer, UnknownAckIsDropped) {
  Fixture f;
  auto ack = std::make_shared<CommitAckMsg>();
  ack->tx_hash[0] = 0x77;
  f.validators[0]->send(4, ack);
  f.sim.run_until_idle();
  EXPECT_TRUE(f.client->acks.empty());
}

}  // namespace
}  // namespace srbb::node
