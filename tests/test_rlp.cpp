#include "codec/rlp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"

namespace srbb::rlp {
namespace {

Bytes bytes_of(const std::string& s) {
  return Bytes{s.begin(), s.end()};
}

TEST(RlpEncode, EmptyString) {
  EXPECT_EQ(encode_bytes(BytesView{}), (Bytes{0x80}));
}

TEST(RlpEncode, SingleLowByteEncodesItself) {
  const Bytes in{0x42};
  EXPECT_EQ(encode_bytes(in), (Bytes{0x42}));
  const Bytes zero{0x00};
  EXPECT_EQ(encode_bytes(zero), (Bytes{0x00}));
}

TEST(RlpEncode, SingleHighByteGetsHeader) {
  const Bytes in{0x80};
  EXPECT_EQ(encode_bytes(in), (Bytes{0x81, 0x80}));
}

TEST(RlpEncode, ShortString) {
  // "dog" -> 0x83 'd' 'o' 'g' (yellow paper example)
  const Bytes dog = bytes_of("dog");
  EXPECT_EQ(encode_bytes(dog), (Bytes{0x83, 'd', 'o', 'g'}));
}

TEST(RlpEncode, LongStringHeader) {
  const Bytes in(56, 'x');
  const Bytes enc = encode_bytes(in);
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], 56);
  EXPECT_EQ(enc.size(), 58u);
}

TEST(RlpEncode, Integers) {
  EXPECT_EQ(encode_u64(0), (Bytes{0x80}));  // zero is the empty string
  EXPECT_EQ(encode_u64(15), (Bytes{0x0f}));
  EXPECT_EQ(encode_u64(1024), (Bytes{0x82, 0x04, 0x00}));
}

TEST(RlpEncode, EmptyList) {
  EXPECT_EQ(encode_list({}), (Bytes{0xc0}));
}

TEST(RlpEncode, CatDogList) {
  // ["cat", "dog"] -> 0xc8 0x83 cat 0x83 dog
  const Bytes enc =
      encode_list({encode_bytes(bytes_of("cat")), encode_bytes(bytes_of("dog"))});
  EXPECT_EQ(enc[0], 0xc8);
  EXPECT_EQ(enc.size(), 9u);
}

TEST(RlpDecode, RoundTripStrings) {
  Rng rng{21};
  for (std::size_t len : {0u, 1u, 2u, 54u, 55u, 56u, 57u, 200u, 1000u, 70000u}) {
    Bytes payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes enc = encode_bytes(payload);
    auto item = decode(enc);
    ASSERT_TRUE(item.is_ok()) << item.message();
    EXPECT_FALSE(item.value().is_list);
    EXPECT_EQ(item.value().payload, payload) << len;
  }
}

TEST(RlpDecode, RoundTripIntegers) {
  Rng rng{22};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_u64() >> (i % 64);
    auto item = decode(encode_u64(v));
    ASSERT_TRUE(item.is_ok());
    auto back = item.value().as_u64();
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(RlpDecode, RoundTripU256) {
  const U256 v = (U256::one() << 200) + U256{12345};
  auto item = decode(encode_u256(v));
  ASSERT_TRUE(item.is_ok());
  auto back = item.value().as_u256();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), v);
}

TEST(RlpDecode, NestedLists) {
  // [[], [[]], "x"]
  ListBuilder inner_empty;
  ListBuilder inner_nested;
  inner_nested.add_raw(encode_list({}));
  ListBuilder outer;
  outer.add_raw(encode_list({}));
  outer.add_raw(inner_nested.build());
  outer.add_bytes(bytes_of("x"));
  auto item = decode(outer.build());
  ASSERT_TRUE(item.is_ok());
  const Item& root = item.value();
  ASSERT_TRUE(root.is_list);
  ASSERT_EQ(root.items.size(), 3u);
  EXPECT_TRUE(root.items[0].is_list);
  EXPECT_TRUE(root.items[0].items.empty());
  ASSERT_EQ(root.items[1].items.size(), 1u);
  EXPECT_TRUE(root.items[1].items[0].is_list);
  EXPECT_EQ(root.items[2].payload, bytes_of("x"));
}

TEST(RlpDecode, ListBuilderRoundTrip) {
  ListBuilder builder;
  builder.add_u64(7).add_bytes(bytes_of("hello")).add_u256(U256::max());
  auto item = decode(builder.build());
  ASSERT_TRUE(item.is_ok());
  ASSERT_EQ(item.value().items.size(), 3u);
  EXPECT_EQ(item.value().items[0].as_u64().value(), 7u);
  EXPECT_EQ(item.value().items[1].payload, bytes_of("hello"));
  EXPECT_EQ(item.value().items[2].as_u256().value(), U256::max());
}

TEST(RlpDecode, RejectsTruncated) {
  const Bytes enc = encode_bytes(bytes_of("hello world"));
  for (std::size_t cut = 1; cut < enc.size(); ++cut) {
    const Bytes prefix{enc.begin(), enc.begin() + static_cast<std::ptrdiff_t>(cut)};
    EXPECT_FALSE(decode(prefix).is_ok()) << cut;
  }
}

TEST(RlpDecode, RejectsTrailingBytes) {
  Bytes enc = encode_u64(5);
  enc.push_back(0x00);
  EXPECT_FALSE(decode(enc).is_ok());
}

TEST(RlpDecode, RejectsNonCanonicalSingleByte) {
  // 0x81 0x05 should have been encoded as plain 0x05.
  EXPECT_FALSE(decode(Bytes{0x81, 0x05}).is_ok());
}

TEST(RlpDecode, RejectsNonCanonicalLongForm) {
  // Long form (0xb8) for a 3-byte payload.
  EXPECT_FALSE(decode(Bytes{0xb8, 0x03, 'a', 'b', 'c'}).is_ok());
}

TEST(RlpDecode, RejectsLeadingZeroLength) {
  EXPECT_FALSE(decode(Bytes{0xb9, 0x00, 0x38}).is_ok());
}

TEST(RlpDecode, RejectsEmptyInput) {
  EXPECT_FALSE(decode(BytesView{}).is_ok());
}

TEST(RlpDecode, IntegerRejectsLeadingZero) {
  // 0x82 0x00 0x01 is a valid string but not a canonical integer.
  auto item = decode(Bytes{0x82, 0x00, 0x01});
  ASSERT_TRUE(item.is_ok());
  EXPECT_FALSE(item.value().as_u64().is_ok());
}

TEST(RlpDecode, IntegerRejectsList) {
  auto item = decode(encode_list({}));
  ASSERT_TRUE(item.is_ok());
  EXPECT_FALSE(item.value().as_u64().is_ok());
}

TEST(RlpDecode, IntegerRejectsTooWide) {
  Bytes payload(33, 0x01);
  auto item = decode(encode_bytes(payload));
  ASSERT_TRUE(item.is_ok());
  EXPECT_FALSE(item.value().as_u256().is_ok());
  // 9 bytes exceeds u64 but fits u256.
  Bytes nine(9, 0x01);
  auto item9 = decode(encode_bytes(nine));
  ASSERT_TRUE(item9.is_ok());
  EXPECT_FALSE(item9.value().as_u64().is_ok());
  EXPECT_TRUE(item9.value().as_u256().is_ok());
}

TEST(RlpDecode, DecodePrefixAdvances) {
  Bytes two = encode_u64(1);
  append(two, encode_u64(2));
  BytesView view{two};
  auto first = decode_prefix(view);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().as_u64().value(), 1u);
  auto second = decode_prefix(view);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().as_u64().value(), 2u);
  EXPECT_TRUE(view.empty());
}

TEST(RlpDecode, LargeListRoundTrip) {
  ListBuilder builder;
  for (std::uint64_t i = 0; i < 1000; ++i) builder.add_u64(i);
  auto item = decode(builder.build());
  ASSERT_TRUE(item.is_ok());
  ASSERT_EQ(item.value().items.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(item.value().items[i].as_u64().value(), i);
  }
}

}  // namespace
}  // namespace srbb::rlp
