#include "state/bloom.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"

namespace srbb::state {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes{s.begin(), s.end()}; }

TEST(Bloom, EmptyContainsNothing) {
  LogBloom bloom;
  EXPECT_TRUE(bloom.empty());
  EXPECT_FALSE(bloom.may_contain(bytes_of("anything")));
}

TEST(Bloom, NoFalseNegatives) {
  LogBloom bloom;
  std::vector<Bytes> added;
  for (int i = 0; i < 50; ++i) {
    added.push_back(bytes_of("topic-" + std::to_string(i)));
    bloom.add(added.back());
  }
  for (const Bytes& datum : added) {
    EXPECT_TRUE(bloom.may_contain(datum));
  }
  EXPECT_FALSE(bloom.empty());
}

TEST(Bloom, FalsePositiveRateIsLowWhenSparse) {
  LogBloom bloom;
  for (int i = 0; i < 20; ++i) bloom.add(bytes_of("present-" + std::to_string(i)));
  int false_positives = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.may_contain(bytes_of("absent-" + std::to_string(i)))) {
      ++false_positives;
    }
  }
  // 20 items * 3 bits in 2048 bits: fp rate ~ (60/2048)^3 ~ 2.5e-5.
  EXPECT_LT(false_positives, 3);
}

TEST(Bloom, MergeIsUnion) {
  LogBloom a;
  LogBloom b;
  a.add(bytes_of("alpha"));
  b.add(bytes_of("beta"));
  a.merge(b);
  EXPECT_TRUE(a.may_contain(bytes_of("alpha")));
  EXPECT_TRUE(a.may_contain(bytes_of("beta")));
  EXPECT_FALSE(b.may_contain(bytes_of("alpha")));
}

TEST(Bloom, ExactlyThreeBitsPerDatum) {
  LogBloom bloom;
  bloom.add(bytes_of("one-datum"));
  int set_bits = 0;
  for (const std::uint8_t byte : bloom.bits()) {
    set_bits += __builtin_popcount(byte);
  }
  EXPECT_GE(set_bits, 1);
  EXPECT_LE(set_bits, 3);  // may collide internally, never exceed 3
}

TEST(Bloom, DeterministicAndEqualityComparable) {
  LogBloom a;
  LogBloom b;
  a.add(bytes_of("same"));
  b.add(bytes_of("same"));
  EXPECT_EQ(a, b);
  b.add(bytes_of("more"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace srbb::state
