#include "crypto/keccak.hpp"

#include <gtest/gtest.h>

#include <string>

namespace srbb::crypto {
namespace {

BytesView sv(const std::string& s) {
  return BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// Known answers for Keccak-256 (original padding, as used by Ethereum).
TEST(Keccak256, EmptyString) {
  EXPECT_EQ(Keccak256::hash(BytesView{}).hex(),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256, Abc) {
  EXPECT_EQ(Keccak256::hash(sv("abc")).hex(),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, HelloEthereumStyle) {
  // keccak256("hello") — widely used in Solidity documentation.
  EXPECT_EQ(Keccak256::hash(sv("hello")).hex(),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
}

TEST(Keccak256, TransferSignature) {
  // The canonical ERC-20 event id: keccak256("Transfer(address,address,uint256)").
  EXPECT_EQ(Keccak256::hash(sv("Transfer(address,address,uint256)")).hex(),
            "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef");
}

TEST(Keccak256, IncrementalMatchesOneShot) {
  const std::string msg(500, 'e');
  Keccak256 k;
  k.update(sv(msg.substr(0, 135)));
  k.update(sv(msg.substr(135, 2)));
  k.update(sv(msg.substr(137)));
  EXPECT_EQ(k.finish(), Keccak256::hash(sv(msg)));
}

TEST(Keccak256, RateBoundaryLengths) {
  // Lengths straddling the 136-byte rate.
  for (std::size_t len : {135u, 136u, 137u, 271u, 272u, 273u}) {
    const std::string msg(len, 'r');
    Keccak256 k;
    k.update(sv(msg));
    EXPECT_EQ(k.finish(), Keccak256::hash(sv(msg))) << len;
  }
}

TEST(Keccak256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Keccak256::hash(sv("a")), Keccak256::hash(sv("b")));
  EXPECT_NE(Keccak256::hash(sv("")), Keccak256::hash(sv(std::string("\x00", 1))));
}

TEST(AddressDerivation, Last20BytesOfKeccak) {
  const std::string pubkey(32, 'p');
  const Hash32 h = Keccak256::hash(sv(pubkey));
  const Address a = address_from_pubkey(sv(pubkey));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a[i], h[12 + i]);
}

TEST(AddressDerivation, DifferentKeysDifferentAddresses) {
  EXPECT_NE(address_from_pubkey(sv(std::string(32, 'a'))),
            address_from_pubkey(sv(std::string(32, 'b'))));
}

}  // namespace
}  // namespace srbb::crypto
