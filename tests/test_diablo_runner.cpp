// Integration tests of the experiment runner at small scale: SRBB vs the
// EVM+DBFT baseline vs a modern-chain model on a light workload, checking
// the qualitative relationships the paper's evaluation rests on.
#include "diablo/runner.hpp"

#include <gtest/gtest.h>

#include "chains/presets.hpp"
#include "diablo/report.hpp"

namespace srbb::diablo {
namespace {

RunConfig base_config(double tps, std::uint32_t duration_s) {
  RunConfig config;
  config.validators = 4;
  config.clients = 2;
  config.workload = WorkloadSpec::constant("test", tps, duration_s);
  config.latency = sim::LatencyModel::uniform(2, millis(20));
  config.drain = seconds(30);
  config.min_block_interval = millis(200);
  config.proposal_timeout = millis(400);
  return config;
}

TEST(DiabloRunner, SrbbCommitsLightLoadFully) {
  RunConfig config = base_config(20, 5);
  config.kind = SystemKind::kSrbb;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.sent, 100u);
  EXPECT_EQ(result.committed, 100u);
  EXPECT_NEAR(result.commit_pct, 100.0, 0.01);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.avg_latency_s, 0.0);
  EXPECT_LT(result.avg_latency_s, 10.0);
  EXPECT_EQ(result.gossip_tx_messages, 0u);  // TVPR
}

TEST(DiabloRunner, EvmDbftGossipsAndValidatesMore) {
  RunConfig srbb = base_config(20, 5);
  srbb.kind = SystemKind::kSrbb;
  RunConfig baseline = base_config(20, 5);
  baseline.kind = SystemKind::kEvmDbft;
  baseline.system_name = "EVM+DBFT";

  const RunResult srbb_result = run_experiment(srbb);
  const RunResult baseline_result = run_experiment(baseline);

  EXPECT_GT(baseline_result.gossip_tx_messages, 0u);
  // Redundant eager validation: ~n per tx vs ~1 per tx (§III-A).
  EXPECT_GT(baseline_result.eager_validations,
            3 * srbb_result.eager_validations);
  // Both commit a light load.
  EXPECT_EQ(baseline_result.committed, baseline_result.sent);
}

TEST(DiabloRunner, ModernChainModelCommitsLightLoad) {
  RunConfig config = base_config(10, 5);
  config.kind = SystemKind::kModern;
  config.preset = chains::preset_quorum_ibft();
  config.system_name = config.preset.name;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.sent, 50u);
  EXPECT_GT(result.committed, 45u);  // allow stragglers at window edge
  EXPECT_GT(result.gossip_tx_messages, 0u);
}

TEST(DiabloRunner, OverloadedModernChainLosesTransactions) {
  // Offered load far above the preset's commit capacity saturates pools.
  RunConfig config = base_config(500, 20);
  config.kind = SystemKind::kModern;
  config.preset = chains::preset_avalanche();  // ~60 TPS ceiling
  config.system_name = config.preset.name;
  config.drain = seconds(30);
  const RunResult result = run_experiment(config);
  EXPECT_LT(result.commit_pct, 60.0);
  EXPECT_GT(result.pool_drops, 0u);
}

TEST(DiabloRunner, SrbbSurvivesTheSameOverload) {
  RunConfig config = base_config(500, 20);
  config.kind = SystemKind::kSrbb;
  config.drain = seconds(30);
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.commit_pct, 99.0);
}

TEST(DiabloRunner, ByzantineFloodingDiscardsInvalidOnly) {
  RunConfig config = base_config(50, 5);
  config.kind = SystemKind::kSrbb;
  config.byzantine = 1;
  config.flood_invalid_per_block = 30;
  config.rpm = false;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.committed, result.sent);  // no valid tx dropped (Table I)
  EXPECT_GT(result.invalid_discarded, 0u);
}

TEST(DiabloRunner, RpmSlashesFlooder) {
  RunConfig config = base_config(50, 5);
  config.kind = SystemKind::kSrbb;
  config.byzantine = 1;
  config.flood_invalid_per_block = 30;
  config.rpm = true;
  // After exclusion, transactions sent to the slashed validator need the
  // §VI client retry to land elsewhere.
  config.client_resend_timeout = seconds(5);
  const RunResult result = run_experiment(config);
  EXPECT_GE(result.slash_events, 1u);
  EXPECT_EQ(result.committed, result.sent);
}

TEST(DiabloRunner, ScaleConfigShrinksConsistently) {
  RunConfig config;
  config.validators = 200;
  config.workload = WorkloadSpec::fifa();
  config.preset = chains::preset_quorum_ibft();
  const RunConfig scaled = scale_config(config, 0.1);
  EXPECT_EQ(scaled.validators, 20u);
  EXPECT_NEAR(scaled.workload.average_tps(), 348.3, 2.0);
  EXPECT_EQ(scaled.preset.max_block_txs, 180u);
  // Scaling up is a no-op.
  const RunConfig same = scale_config(config, 1.0);
  EXPECT_EQ(same.validators, 200u);
}

TEST(DiabloRunner, SharedAndReplicatedExecutionAgree) {
  // Execution mode is a performance switch, not a semantics switch: the same
  // run must commit the same transactions either way (determinism of the
  // execution oracle).
  RunConfig shared_cfg = base_config(40, 5);
  shared_cfg.kind = SystemKind::kSrbb;
  shared_cfg.replicated_execution = false;
  RunConfig replicated_cfg = shared_cfg;
  replicated_cfg.replicated_execution = true;
  const RunResult shared = run_experiment(shared_cfg);
  const RunResult replicated = run_experiment(replicated_cfg);
  EXPECT_EQ(shared.committed, replicated.committed);
  EXPECT_EQ(shared.sent, replicated.sent);
  EXPECT_DOUBLE_EQ(shared.avg_latency_s, replicated.avg_latency_s);
}

TEST(DiabloRunner, RouterWorkloadCommitsFully) {
  // Two-contract router workload (interprocedural analysis): every tx
  // DELEGATECALLs the token through the router, spending a genesis-funded
  // ledger slot in router storage. All sends must commit — in particular the
  // composed min-gas gate in eager validation must admit the 200k budget.
  RunConfig config = base_config(20, 5);
  config.kind = SystemKind::kSrbb;
  config.workload =
      WorkloadSpec::constant("router", 20, 5, TxShape::kRouterTransfer);
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.sent, 100u);
  EXPECT_EQ(result.committed, 100u);
}

TEST(DiabloRunner, DeterministicForSameSeed) {
  RunConfig config = base_config(30, 4);
  config.kind = SystemKind::kSrbb;
  config.seed = 9;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.network_messages, b.network_messages);
}

TEST(DiabloReport, FormatsRows) {
  RunResult r;
  r.system = "SRBB";
  r.workload = "FIFA";
  r.throughput_tps = 1819.0;
  r.commit_pct = 98.0;
  r.avg_latency_s = 64.0;
  const std::string row = format_row(r);
  EXPECT_NE(row.find("SRBB"), std::string::npos);
  EXPECT_NE(row.find("1819.00"), std::string::npos);
  EXPECT_NE(row.find("98.0%"), std::string::npos);
  const std::string table = format_table({r});
  EXPECT_NE(table.find("tput(TPS)"), std::string::npos);
  EXPECT_NE(format_diagnostics(r).find("sent="), std::string::npos);
}

}  // namespace
}  // namespace srbb::diablo
