// Differential tests for the optimistic parallel executor: every workload is
// executed both sequentially (apply_transaction in order) and through
// ParallelExecutor, and the two runs must agree on every receipt (validity,
// success, gas, logs, created address), every error message and the final
// state_root() — the bit-identical guarantee replicated-mode convergence
// relies on.
#include "txn/parallel_executor.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string_view>

#include "common/time.hpp"
#include "evm/contracts.hpp"
#include "obs/trace.hpp"
#include "srbb/oracle.hpp"
#include "state/overlay.hpp"
#include "txn/block.hpp"

namespace srbb::txn {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

Address contract_addr(std::uint8_t tag) {
  Address a;
  a[0] = 0xC0;
  a[19] = tag;
  return a;
}

const Address kCounter = contract_addr(1);
const Address kExchange = contract_addr(2);
const Address kTicketing = contract_addr(3);
const Address kMobility = contract_addr(4);
const Address kKvStore = contract_addr(5);

// Genesis used by every test: funded senders plus the DApp contracts.
state::StateDB make_state(std::size_t senders) {
  state::StateDB db;
  for (std::size_t i = 0; i < senders; ++i) {
    db.add_balance(scheme().make_identity(i).address(), U256{1'000'000'000});
  }
  auto deploy = [&db](const Address& at, const evm::Contract& contract) {
    db.create_account(at);
    db.set_nonce(at, 1);
    db.set_code(at, contract.runtime_code);
  };
  deploy(kCounter, evm::counter_contract());
  deploy(kExchange, evm::exchange_contract());
  deploy(kTicketing, evm::ticketing_contract());
  deploy(kMobility, evm::mobility_contract());
  deploy(kKvStore, evm::kvstore_contract());
  db.commit();
  return db;
}

Transaction signed_tx(std::uint64_t sender, TxParams params) {
  return make_signed(params, scheme().make_identity(sender), scheme());
}

Transaction transfer(std::uint64_t sender, std::uint64_t nonce,
                     std::uint64_t to_tag, std::uint64_t value = 7) {
  TxParams params;
  params.nonce = nonce;
  params.gas_limit = 30'000;
  params.to = scheme().make_identity(10'000 + to_tag).address();
  params.value = U256{value};
  return signed_tx(sender, params);
}

Transaction invoke(std::uint64_t sender, std::uint64_t nonce,
                   const Address& contract, Bytes calldata) {
  TxParams params;
  params.kind = TxKind::kInvoke;
  params.nonce = nonce;
  params.gas_limit = 300'000;
  params.to = contract;
  params.data = std::move(calldata);
  return signed_tx(sender, params);
}

std::vector<Result<Receipt>> run_sequential(const std::vector<Transaction>& txs,
                                            state::StateDB& db,
                                            const ExecutionConfig& config) {
  std::vector<Result<Receipt>> out;
  out.reserve(txs.size());
  for (const Transaction& tx : txs) {
    out.push_back(apply_transaction(tx, db, {}, config));
  }
  db.commit();
  return out;
}

void expect_identical(const std::vector<Result<Receipt>>& seq,
                      const std::vector<Result<Receipt>>& par) {
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].is_ok(), par[i].is_ok())
        << "tx " << i << ": seq=" << seq[i].message()
        << " par=" << par[i].message();
    if (!seq[i].is_ok()) {
      EXPECT_EQ(seq[i].message(), par[i].message()) << "tx " << i;
      continue;
    }
    const Receipt& a = seq[i].value();
    const Receipt& b = par[i].value();
    EXPECT_EQ(a.tx_hash, b.tx_hash) << "tx " << i;
    EXPECT_EQ(a.success, b.success) << "tx " << i;
    EXPECT_EQ(a.gas_used, b.gas_used) << "tx " << i;
    EXPECT_EQ(a.contract_address, b.contract_address) << "tx " << i;
    ASSERT_EQ(a.logs.size(), b.logs.size()) << "tx " << i;
    for (std::size_t j = 0; j < a.logs.size(); ++j) {
      EXPECT_EQ(a.logs[j].address, b.logs[j].address);
      EXPECT_EQ(a.logs[j].topics, b.logs[j].topics);
      EXPECT_EQ(a.logs[j].data, b.logs[j].data);
    }
  }
}

// Run `txs` both ways from identical genesis and compare everything. With
// `analysis_hints`, the parallel run uses the conflict-aware pre-scheduler
// (its own AnalysisCache, so tests never depend on global cache state).
ParallelExecStats run_differential(const std::vector<Transaction>& txs,
                                   std::size_t senders,
                                   std::size_t workers = 4,
                                   std::size_t max_retries = 3,
                                   bool analysis_hints = false) {
  ExecutionConfig config;
  config.scheme = &scheme();
  evm::analysis::AnalysisCache hint_cache;
  config.analysis_hints = analysis_hints;
  config.hint_cache = &hint_cache;

  state::StateDB seq_db = make_state(senders);
  const std::vector<Result<Receipt>> seq = run_sequential(txs, seq_db, config);

  state::StateDB par_db = make_state(senders);
  std::vector<const Transaction*> ptrs;
  for (const Transaction& tx : txs) ptrs.push_back(&tx);
  ParallelExecutor executor{workers, max_retries};
  ParallelExecStats stats;
  const std::vector<Result<Receipt>> par =
      executor.execute_block(ptrs, par_db, {}, config, &stats);
  par_db.commit();

  expect_identical(seq, par);
  EXPECT_EQ(seq_db.state_root(), par_db.state_root());
  EXPECT_EQ(seq_db.state_root_mpt(), par_db.state_root_mpt());
  EXPECT_EQ(seq_db.account_count(), par_db.account_count());
  EXPECT_EQ(stats.txs, txs.size());
  return stats;
}

TEST(ParallelExecutor, DisjointTransfersCommitWithoutConflicts) {
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 64; ++s) txs.push_back(transfer(s, 0, s));
  const ParallelExecStats stats = run_differential(txs, 64);
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(stats.fallback_txs, 0u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.speculative_runs, txs.size());
}

TEST(ParallelExecutor, SharedCounterHotSpotStaysDeterministic) {
  // Every transaction increments slot 0 of the same contract: the worst
  // case, where each round can commit only its first pending transaction.
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 24; ++s) {
    txs.push_back(invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
  }
  const ParallelExecStats stats = run_differential(txs, 24);
  EXPECT_GT(stats.aborts, 0u);
  EXPECT_GT(stats.fallback_txs, 0u);  // 4 rounds cannot drain 24 conflicts
}

TEST(ParallelExecutor, ForcedSequentialFallback) {
  // max_retries = 0: one optimistic round, then the sequential path must
  // finish the block and still match sequential execution exactly.
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 16; ++s) {
    txs.push_back(invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
  }
  const ParallelExecStats stats =
      run_differential(txs, 16, /*workers=*/4, /*max_retries=*/0);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.fallback_txs, txs.size() - 1);  // round 0 commits only tx 0
}

TEST(ParallelExecutor, DeployAndCallMix) {
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 8; ++s) {
    TxParams params;
    params.kind = TxKind::kDeploy;
    params.nonce = 0;
    params.gas_limit = 3'000'000;
    params.data = evm::counter_contract().deploy_code;
    txs.push_back(signed_tx(s, params));
    txs.push_back(transfer(s, 1, 100 + s));
  }
  run_differential(txs, 8);
}

TEST(ParallelExecutor, RevertsAndInvalidTransactions) {
  std::vector<Transaction> txs;
  // Everyone fights for the same seat: the canonical first buyer wins, the
  // others revert (valid transactions with failed receipts).
  for (std::uint64_t s = 0; s < 8; ++s) {
    txs.push_back(invoke(s, 0, kTicketing,
                         evm::encode_call("buy(uint256,uint256)",
                                          {U256{1}, U256{42}})));
  }
  // Unfunded sender: invalid, discarded without a state transition.
  txs.push_back(transfer(900, 0, 1));
  // Stale nonce duplicate of sender 0's transaction.
  txs.push_back(invoke(0, 0, kTicketing,
                       evm::encode_call("buy(uint256,uint256)",
                                        {U256{2}, U256{7}})));
  const ParallelExecStats stats = run_differential(txs, 8);
  EXPECT_GT(stats.aborts, 0u);
}

TEST(ParallelExecutor, SelfDestructFreeCreateRecreate) {
  // CREATE from two different senders plus interleaved transfers to the
  // freshly created addresses — exercises exists-read validation.
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    TxParams params;
    params.kind = TxKind::kDeploy;
    params.nonce = 0;
    params.gas_limit = 3'000'000;
    params.data = evm::counter_contract().deploy_code;
    txs.push_back(signed_tx(s, params));
  }
  for (std::uint64_t s = 4; s < 8; ++s) txs.push_back(transfer(s, 0, s));
  run_differential(txs, 8);
}

TEST(ParallelExecutor, RandomizedWorkloadsMatchSequential) {
  for (const std::uint32_t seed : {1u, 7u, 1234u}) {
    std::mt19937 rng{seed};
    std::uniform_int_distribution<int> shape(0, 5);
    constexpr std::uint64_t kSenders = 32;
    std::vector<std::uint64_t> nonces(kSenders, 0);
    std::vector<Transaction> txs;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t s = rng() % kSenders;
      switch (shape(rng)) {
        case 0:  // disjoint-ish transfer
          txs.push_back(transfer(s, nonces[s]++, rng() % 64));
          break;
        case 1:  // exchange trade on a small stock universe (medium conflict)
          txs.push_back(invoke(
              s, nonces[s]++, kExchange,
              evm::encode_call("trade(uint256,uint256,uint256)",
                               {U256{rng() % 5}, U256{90 + rng() % 20},
                                U256{1 + rng() % 9}})));
          break;
        case 2:  // shared counter (hot spot)
          txs.push_back(invoke(s, nonces[s]++, kCounter,
                               evm::encode_call("increment()", {})));
          break;
        case 3:  // ticket purchases, occasionally colliding on a seat
          txs.push_back(invoke(
              s, nonces[s]++, kTicketing,
              evm::encode_call("buy(uint256,uint256)",
                               {U256{rng() % 3}, U256{rng() % 12}})));
          break;
        case 4: {  // contract deployment
          TxParams params;
          params.kind = TxKind::kDeploy;
          params.nonce = nonces[s]++;
          params.gas_limit = 3'000'000;
          params.data = evm::counter_contract().deploy_code;
          txs.push_back(signed_tx(s, params));
          break;
        }
        default:  // invalid: future nonce, discarded by lazy validation
          txs.push_back(transfer(s, nonces[s] + 50, 3));
          break;
      }
    }
    run_differential(txs, kSenders);
  }
}

TEST(ParallelExecutor, WorkerCountsDoNotChangeResults) {
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 32; ++s) {
    txs.push_back(s % 3 == 0 ? invoke(s, 0, kCounter,
                                      evm::encode_call("increment()", {}))
                             : transfer(s, 0, s));
  }
  for (const std::size_t workers : {1u, 2u, 8u}) {
    run_differential(txs, 32, workers);
  }
}

// --- Analysis-hinted scheduling (txn/rwset.hpp) -------------------------
// Every hinted test is the same differential as above: receipts and roots
// must be bit-identical to sequential execution; hints may only change the
// schedule (aborts, rounds, deferrals).

TEST(HintedExecutor, DisjointKvStorePutsCommitInOneRound) {
  // Distinct senders writing distinct keccak-mapped keys: the static
  // summaries prove non-conflict, so one wave commits everything.
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 32; ++s) {
    txs.push_back(invoke(s, 0, kKvStore,
                         evm::encode_call("put(uint256,uint256)",
                                          {U256{1000 + s}, U256{s}})));
  }
  const ParallelExecStats stats =
      run_differential(txs, 32, 4, 3, /*analysis_hints=*/true);
  EXPECT_EQ(stats.hinted_txs, txs.size());
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(stats.hint_deferrals, 0u);
  EXPECT_EQ(stats.hint_violations, 0u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.fallback_txs, 0u);
}

TEST(HintedExecutor, HotSlotSerializesInsteadOfAborting) {
  // Worst-case contention: every transaction bumps counter slot 0. Blind
  // Block-STM burns an abort per non-head speculation and falls back; the
  // hinted scheduler serializes the predicted conflict class — zero aborts,
  // zero fallback, identical receipts (the paper's congestion argument).
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 24; ++s) {
    txs.push_back(invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
  }
  const ParallelExecStats blind = run_differential(txs, 24);
  const ParallelExecStats hinted =
      run_differential(txs, 24, 4, 3, /*analysis_hints=*/true);
  EXPECT_GT(blind.aborts, 0u);
  EXPECT_EQ(hinted.aborts, 0u);
  EXPECT_LT(hinted.aborts, blind.aborts);  // the acceptance criterion
  EXPECT_EQ(hinted.fallback_txs, 0u);
  EXPECT_EQ(hinted.hint_violations, 0u);
  EXPECT_GT(hinted.hint_deferrals, 0u);
  EXPECT_EQ(hinted.rounds, txs.size());  // one commit per serialized round
  EXPECT_EQ(hinted.speculative_runs, txs.size());  // each tx runs exactly once
}

TEST(HintedExecutor, TopHeavyBlocksKeepBlindBehaviour) {
  // Deploys get ⊤ predictions: the hinted executor must not serialize them
  // (they speculate blindly every round) and still match sequential.
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 8; ++s) {
    TxParams params;
    params.kind = TxKind::kDeploy;
    params.nonce = 0;
    params.gas_limit = 3'000'000;
    params.data = evm::counter_contract().deploy_code;
    txs.push_back(signed_tx(s, params));
    txs.push_back(transfer(s, 1, 100 + s));
  }
  const ParallelExecStats stats =
      run_differential(txs, 8, 4, 3, /*analysis_hints=*/true);
  EXPECT_EQ(stats.top_txs, 8u);
  EXPECT_EQ(stats.hinted_txs, 8u);
}

TEST(HintedExecutor, DiabloShapedTracesMatchSequential) {
  // The three DIABLO traces by their DApp shape and contention profile:
  // NASDAQ — exchange trades over a handful of hot stocks (+ shared trade
  // counter), Uber — mobility rides with unique rideIds but shared totals,
  // FIFA — ticket buys with seat collisions (reverts). Hinted and blind runs
  // must both be bit-identical to sequential.
  for (const std::uint32_t seed : {3u, 99u}) {
    std::mt19937 rng{seed};
    constexpr std::uint64_t kSenders = 32;

    std::vector<std::uint64_t> nonces(kSenders, 0);
    std::vector<Transaction> nasdaq;
    for (int i = 0; i < 96; ++i) {
      const std::uint64_t s = rng() % kSenders;
      nasdaq.push_back(invoke(
          s, nonces[s]++, kExchange,
          evm::encode_call("trade(uint256,uint256,uint256)",
                           {U256{rng() % 5}, U256{90 + rng() % 20},
                            U256{1 + rng() % 9}})));
    }

    std::fill(nonces.begin(), nonces.end(), 0);
    std::vector<Transaction> uber;
    for (int i = 0; i < 96; ++i) {
      const std::uint64_t s = rng() % kSenders;
      uber.push_back(invoke(s, nonces[s]++, kMobility,
                            evm::encode_call("ride(uint256,uint256)",
                                             {U256{1000u * seed + i},
                                              U256{10 + rng() % 40}})));
    }

    std::fill(nonces.begin(), nonces.end(), 0);
    std::vector<Transaction> fifa;
    for (int i = 0; i < 96; ++i) {
      const std::uint64_t s = rng() % kSenders;
      fifa.push_back(invoke(s, nonces[s]++, kTicketing,
                            evm::encode_call("buy(uint256,uint256)",
                                             {U256{rng() % 3}, U256{rng() % 40}})));
    }

    for (const auto* trace : {&nasdaq, &uber, &fifa}) {
      const ParallelExecStats hinted =
          run_differential(*trace, kSenders, 4, 3, /*analysis_hints=*/true);
      EXPECT_EQ(hinted.hinted_txs, trace->size());
      EXPECT_EQ(hinted.hint_violations, 0u);
      EXPECT_EQ(hinted.fallback_txs, 0u);
      run_differential(*trace, kSenders);  // blind control
    }
  }
}

TEST(HintedExecutor, MixedRandomizedWorkloadsMatchSequential) {
  // The randomized mix (transfers, trades, counter hits, ticket buys,
  // deploys, invalid nonces, kvstore puts) under hints: the full
  // differential plus guard invariants.
  for (const std::uint32_t seed : {11u, 4242u}) {
    std::mt19937 rng{seed};
    std::uniform_int_distribution<int> shape(0, 6);
    constexpr std::uint64_t kSenders = 32;
    std::vector<std::uint64_t> nonces(kSenders, 0);
    std::vector<Transaction> txs;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t s = rng() % kSenders;
      switch (shape(rng)) {
        case 0:
          txs.push_back(transfer(s, nonces[s]++, rng() % 64));
          break;
        case 1:
          txs.push_back(invoke(
              s, nonces[s]++, kExchange,
              evm::encode_call("trade(uint256,uint256,uint256)",
                               {U256{rng() % 5}, U256{90 + rng() % 20},
                                U256{1 + rng() % 9}})));
          break;
        case 2:
          txs.push_back(invoke(s, nonces[s]++, kCounter,
                               evm::encode_call("increment()", {})));
          break;
        case 3:
          txs.push_back(invoke(
              s, nonces[s]++, kTicketing,
              evm::encode_call("buy(uint256,uint256)",
                               {U256{rng() % 3}, U256{rng() % 12}})));
          break;
        case 4: {
          TxParams params;
          params.kind = TxKind::kDeploy;
          params.nonce = nonces[s]++;
          params.gas_limit = 3'000'000;
          params.data = evm::counter_contract().deploy_code;
          txs.push_back(signed_tx(s, params));
          break;
        }
        case 5:
          txs.push_back(invoke(
              s, nonces[s]++, kKvStore,
              evm::encode_call("put(uint256,uint256)",
                               {U256{rng() % 128}, U256{rng() % 100}})));
          break;
        default:
          txs.push_back(transfer(s, nonces[s] + 50, 3));
          break;
      }
    }
    const ParallelExecStats stats =
        run_differential(txs, kSenders, 4, 3, /*analysis_hints=*/true);
    EXPECT_EQ(stats.hinted_txs + stats.top_txs, txs.size());
    EXPECT_EQ(stats.hint_violations, 0u);
  }
}

TEST(HintedExecutor, HintedWorkerCountsDoNotChangeResults) {
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 32; ++s) {
    switch (s % 3) {
      case 0:
        txs.push_back(
            invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
        break;
      case 1:
        txs.push_back(invoke(s, 0, kKvStore,
                             evm::encode_call("put(uint256,uint256)",
                                              {U256{s}, U256{1}})));
        break;
      default:
        txs.push_back(transfer(s, 0, s));
        break;
    }
  }
  for (const std::size_t workers : {1u, 2u, 8u}) {
    run_differential(txs, 32, workers, 3, /*analysis_hints=*/true);
  }
}

TEST(ParallelOracle, MatchesSequentialOracleAndReportsStats) {
  node::GenesisSpec genesis;
  for (std::uint64_t i = 0; i < 16; ++i) {
    genesis.accounts.push_back(
        {scheme().make_identity(i).address(), U256{1'000'000'000}});
  }
  genesis.contracts.push_back({kCounter, evm::counter_contract().runtime_code});

  auto block_of = [](std::uint64_t index, std::uint64_t proposer,
                     std::vector<TxPtr> txs) {
    return std::make_shared<const Block>(
        make_block(index, proposer, 0, Hash32{}, std::move(txs),
                   scheme().make_identity(proposer), scheme()));
  };
  auto tx_ptr = [](Transaction tx) { return make_tx_ptr(std::move(tx)); };

  // Two blocks per index, mixing transfers and counter hits, including a
  // cross-block duplicate (invalid on second appearance, as sequentially).
  const TxPtr dup = tx_ptr(transfer(5, 0, 5));
  std::vector<BlockPtr> blocks = {
      block_of(0, 0, {tx_ptr(transfer(1, 0, 1)), dup,
                      tx_ptr(invoke(2, 0, kCounter,
                                    evm::encode_call("increment()", {})))}),
      block_of(0, 1, {dup, tx_ptr(transfer(3, 0, 3)),
                      tx_ptr(invoke(4, 0, kCounter,
                                    evm::encode_call("increment()", {})))})};

  node::ExecutionOracle sequential{genesis, {}, scheme()};
  node::ExecutionOracle parallel{genesis, {}, scheme()};
  parallel.exec_config().parallel = true;
  parallel.exec_config().workers = 4;

  const node::IndexExecResult& a = sequential.execute(0, blocks);
  const node::IndexExecResult& b = parallel.execute(0, blocks);
  EXPECT_EQ(a.state_root, b.state_root);
  EXPECT_EQ(a.total_valid, b.total_valid);
  EXPECT_EQ(a.total_invalid, b.total_invalid);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    ASSERT_EQ(a.blocks[i].outcomes.size(), b.blocks[i].outcomes.size());
    for (std::size_t j = 0; j < a.blocks[i].outcomes.size(); ++j) {
      EXPECT_EQ(a.blocks[i].outcomes[j].valid, b.blocks[i].outcomes[j].valid);
      EXPECT_EQ(a.blocks[i].outcomes[j].executed_ok,
                b.blocks[i].outcomes[j].executed_ok);
      EXPECT_EQ(a.blocks[i].outcomes[j].gas_used,
                b.blocks[i].outcomes[j].gas_used);
      EXPECT_EQ(a.blocks[i].outcomes[j].fee, b.blocks[i].outcomes[j].fee);
    }
  }
  EXPECT_EQ(a.parallel.txs, 0u);  // sequential path reports no stats
  EXPECT_EQ(b.parallel.txs, 6u);
  EXPECT_GT(b.parallel.speculative_runs, 0u);
  EXPECT_EQ(sequential.db().state_root(), parallel.db().state_root());
}

// The sequential and parallel executors must be observationally equivalent:
// their commit-path traces differ ONLY by executor-internal "exec" category
// events (speculation rounds, fallback). Everything protocol-visible —
// superblock.exec timing, index, valid counts — is byte-identical.
TEST(ParallelOracle, TraceMatchesSequentialModuloExecutorInternals) {
  node::GenesisSpec genesis;
  for (std::uint64_t i = 0; i < 16; ++i) {
    genesis.accounts.push_back(
        {scheme().make_identity(i).address(), U256{1'000'000'000}});
  }
  genesis.contracts.push_back({kCounter, evm::counter_contract().runtime_code});

  auto block_of = [](std::uint64_t index, std::uint64_t proposer,
                     std::vector<TxPtr> txs) {
    return std::make_shared<const Block>(
        make_block(index, proposer, 0, Hash32{}, std::move(txs),
                   scheme().make_identity(proposer), scheme()));
  };
  auto tx_ptr = [](Transaction tx) { return make_tx_ptr(std::move(tx)); };

  // Two indices with contended counter increments so the parallel run emits
  // at least one retry round beyond the first.
  auto index_blocks = [&](std::uint64_t index, std::uint64_t nonce) {
    std::vector<TxPtr> txs;
    for (std::uint64_t sender = 0; sender < 6; ++sender) {
      txs.push_back(tx_ptr(invoke(sender, nonce, kCounter,
                                  evm::encode_call("increment()", {}))));
    }
    return std::vector<BlockPtr>{block_of(index, 0, std::move(txs))};
  };

  node::ExecutionOracle sequential{genesis, {}, scheme()};
  node::ExecutionOracle parallel{genesis, {}, scheme()};
  parallel.exec_config().parallel = true;
  parallel.exec_config().workers = 4;

  obs::TraceSink seq_trace;
  obs::TraceSink par_trace;
  for (std::uint64_t index = 0; index < 2; ++index) {
    const SimTime at = millis(100 * (index + 1));
    const auto blocks = index_blocks(index, index);
    const node::IndexExecResult& a = sequential.execute(
        index, blocks, node::ExecutionOracle::ExecContext{&seq_trace, at, 3});
    const node::IndexExecResult& b = parallel.execute(
        index, blocks, node::ExecutionOracle::ExecContext{&par_trace, at, 3});
    EXPECT_EQ(a.state_root, b.state_root);
  }

  // The parallel trace carries executor-internal events; filtered of the
  // "exec" category it must equal the sequential trace event-for-event.
  EXPECT_GT(par_trace.count_of_category("exec"), 0u);
  EXPECT_GT(par_trace.count_of("exec.round"), 0u);
  EXPECT_EQ(seq_trace.count_of_category("exec"), 0u);

  std::vector<obs::TraceEvent> par_protocol;
  for (const obs::TraceEvent& event : par_trace.events()) {
    if (std::string_view{event.category} != "exec") {
      par_protocol.push_back(event);
    }
  }
  const std::vector<obs::TraceEvent>& seq_events = seq_trace.events();
  ASSERT_EQ(par_protocol.size(), seq_events.size());
  for (std::size_t i = 0; i < seq_events.size(); ++i) {
    const obs::TraceEvent& s = seq_events[i];
    const obs::TraceEvent& p = par_protocol[i];
    EXPECT_EQ(s.ts, p.ts) << "event " << i;
    EXPECT_EQ(s.dur, p.dur) << "event " << i;
    EXPECT_EQ(s.node, p.node) << "event " << i;
    EXPECT_EQ(std::string_view{s.category}, std::string_view{p.category});
    EXPECT_EQ(std::string_view{s.name}, std::string_view{p.name});
    EXPECT_EQ(s.arg0, p.arg0) << "event " << i << " (" << s.name << ")";
    EXPECT_EQ(s.arg1, p.arg1) << "event " << i << " (" << s.name << ")";
  }
}

TEST(OverlayState, RecordsReadsAndBuffersWrites) {
  state::StateDB base;
  base.add_balance(contract_addr(9), U256{50});
  base.commit();

  state::OverlayState overlay{base};
  EXPECT_EQ(overlay.balance(contract_addr(9)), U256{50});
  overlay.set_balance(contract_addr(9), U256{80});
  EXPECT_EQ(overlay.balance(contract_addr(9)), U256{80});
  EXPECT_EQ(base.balance(contract_addr(9)), U256{50});  // base untouched
  EXPECT_TRUE(overlay.validate(base));

  // A conflicting base write invalidates the recorded read.
  base.set_balance(contract_addr(9), U256{51});
  EXPECT_FALSE(overlay.validate(base));
}

TEST(OverlayState, FrameRevertKeepsReadSet) {
  state::StateDB base;
  base.add_balance(contract_addr(9), U256{50});
  base.commit();

  state::OverlayState overlay{base};
  const auto snap = overlay.snapshot();
  overlay.add_balance(contract_addr(9), U256{30});  // reads, then writes
  overlay.revert_to(snap);
  EXPECT_TRUE(overlay.write_set_empty());
  EXPECT_GT(overlay.read_set_size(), 0u);  // reverted reads still conflict
  base.set_balance(contract_addr(9), U256{51});
  EXPECT_FALSE(overlay.validate(base));
}

}  // namespace
}  // namespace srbb::txn
