// Tests of the adaptive-membership layer (DESIGN.md §13): the shared quorum
// arithmetic, MembershipView bookkeeping, and the deterministic reliability
// tracker — scoring, the bounded disabled list, slash-beats-disable removal,
// hysteretic re-admission, the view-lag rule, and bit-for-bit determinism of
// the whole state machine across seeds.
#include "rpm/reliability.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "consensus/quorum.hpp"

namespace srbb::rpm {
namespace {

using consensus::MembershipView;
using consensus::MemberStatus;
using consensus::QuorumParams;

// ---------------------------------------------------------------------------
// QuorumParams — the extracted f+1 / 2f+1 / n-f arithmetic
// ---------------------------------------------------------------------------

TEST(QuorumParams, ClassicDbftThresholds) {
  const QuorumParams q{4, 1};
  EXPECT_EQ(q.amplify(), 2u);        // f+1
  EXPECT_EQ(q.binding(), 3u);        // 2f+1
  EXPECT_EQ(q.supermajority(), 3u);  // n-f
  EXPECT_EQ(q.adoption(), 2u);       // f+1
}

TEST(QuorumParams, LargerCommittee) {
  const QuorumParams q{9, 2};
  EXPECT_EQ(q.amplify(), 3u);
  EXPECT_EQ(q.binding(), 5u);
  EXPECT_EQ(q.supermajority(), 7u);
  EXPECT_EQ(q.adoption(), 3u);
}

TEST(QuorumParams, MaxFaults) {
  EXPECT_EQ(QuorumParams::max_faults(0), 0u);
  EXPECT_EQ(QuorumParams::max_faults(3), 0u);
  EXPECT_EQ(QuorumParams::max_faults(4), 1u);
  EXPECT_EQ(QuorumParams::max_faults(6), 1u);
  EXPECT_EQ(QuorumParams::max_faults(7), 2u);
  EXPECT_EQ(QuorumParams::max_faults(9), 2u);
  EXPECT_EQ(QuorumParams::max_faults(10), 3u);
  EXPECT_EQ(QuorumParams::max_faults(16), 5u);
}

// ---------------------------------------------------------------------------
// MembershipView
// ---------------------------------------------------------------------------

TEST(MembershipView, DefaultIsUnset) {
  const MembershipView view;
  EXPECT_EQ(view.committee_n(), 0u);
  EXPECT_FALSE(view.counts(0));  // nothing counts in an unset view
}

TEST(MembershipView, AllActiveMatchesStaticCommittee) {
  const MembershipView view(9, 2);
  EXPECT_EQ(view.effective_n(), 9u);
  EXPECT_EQ(view.effective_f(), 2u);
  EXPECT_EQ(view.quorums(), (QuorumParams{9, 2}));
  for (std::uint32_t r = 0; r < 9; ++r) EXPECT_TRUE(view.counts(r));
  EXPECT_FALSE(view.counts(9));   // out of range: clients never count
  EXPECT_FALSE(view.counts(42));
}

TEST(MembershipView, DisablingShrinksQuorumsInLockStep) {
  MembershipView view(9, 2);
  view.set_status(3, MemberStatus::kDisabled);
  view.set_status(7, MemberStatus::kDisabled);
  EXPECT_EQ(view.disabled_count(), 2u);
  EXPECT_EQ(view.effective_n(), 7u);
  EXPECT_EQ(view.effective_f(), 2u);  // floor((7-1)/3) = 2 still covers f
  const QuorumParams q = view.quorums();
  EXPECT_EQ(q.supermajority(), 5u);  // n'-f' — the certificate threshold
  EXPECT_EQ(q.binding(), 5u);
  EXPECT_FALSE(view.counts(3));
  EXPECT_FALSE(view.counts(7));
  EXPECT_TRUE(view.counts(0));
}

TEST(MembershipView, EffectiveFNeverExceedsShrunkenTolerance) {
  MembershipView view(9, 2);
  // Shrink hard: 4 removals leave n' = 5, which bears only f = 1.
  for (std::uint32_t r = 5; r < 9; ++r) {
    view.set_status(r, MemberStatus::kRemoved);
  }
  EXPECT_EQ(view.effective_n(), 5u);
  EXPECT_EQ(view.effective_f(), 1u);
  EXPECT_EQ(view.removed_count(), 4u);
}

TEST(MembershipView, DisableCapIsFloorNMinusOneOverFour) {
  EXPECT_EQ(MembershipView::disable_cap(0), 0u);
  EXPECT_EQ(MembershipView::disable_cap(4), 0u);
  EXPECT_EQ(MembershipView::disable_cap(5), 1u);
  EXPECT_EQ(MembershipView::disable_cap(9), 2u);
  EXPECT_EQ(MembershipView::disable_cap(13), 3u);
  EXPECT_EQ(MembershipView::disable_cap(16), 3u);
  EXPECT_EQ(MembershipView::disable_cap(17), 4u);
}

// ---------------------------------------------------------------------------
// ReliabilityTracker
// ---------------------------------------------------------------------------

ReliabilityConfig config_for(std::uint32_t n, std::uint32_t f) {
  ReliabilityConfig c;
  c.n = n;
  c.f = f;
  return c;
}

/// Feed one commit where every rank in `absent` missed and everyone else
/// contributed a clean block.
std::vector<MembershipEvent> commit(ReliabilityTracker& tracker,
                                    const std::vector<std::uint32_t>& absent,
                                    std::uint32_t flood_rank = UINT32_MAX,
                                    std::uint32_t flood_invalid = 0) {
  const std::uint32_t n = tracker.config().n;
  std::vector<bool> contributed(n, true);
  std::vector<std::uint32_t> invalid(n, 0);
  for (const std::uint32_t r : absent) contributed[r] = false;
  if (flood_rank != UINT32_MAX) invalid[flood_rank] = flood_invalid;
  return tracker.on_superblock_committed(tracker.next_index(), contributed,
                                         invalid);
}

TEST(ReliabilityTracker, FaultFreeRunProducesNoEvents) {
  ReliabilityTracker tracker(config_for(9, 2));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(commit(tracker, {}).empty());
  }
  EXPECT_TRUE(tracker.events().empty());
  EXPECT_EQ(tracker.current_view().effective_n(), 9u);
  for (std::uint32_t r = 0; r < 9; ++r) {
    EXPECT_EQ(tracker.score(r), tracker.config().score_max);
  }
}

TEST(ReliabilityTracker, ScoresSaturateAndDebitFasterThanCredit) {
  ReliabilityTracker tracker(config_for(4, 1));
  const ReliabilityConfig& c = tracker.config();
  EXPECT_EQ(tracker.score(2), c.score_initial);
  commit(tracker, {2});
  EXPECT_EQ(tracker.score(2), c.score_initial - c.debit);
  EXPECT_EQ(tracker.readmit_streak(2), 0u);
  commit(tracker, {});
  EXPECT_EQ(tracker.score(2), c.score_initial - c.debit + c.credit);
  EXPECT_EQ(tracker.readmit_streak(2), 1u);
  // Saturation at score_max; debit saturates at 0.
  for (int i = 0; i < 20; ++i) commit(tracker, {});
  EXPECT_EQ(tracker.score(2), c.score_max);
  for (int i = 0; i < 20; ++i) commit(tracker, {2});
  EXPECT_EQ(tracker.score(2), 0u);
}

TEST(ReliabilityTracker, ChronicAbsenteeIsDisabledAfterLagFromViews) {
  ReliabilityTracker tracker(config_for(9, 2));
  // debit 2 per miss from 8: scores 6, 4, 2, 0 — crosses low_water=2 at the
  // 4th miss (index 3).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(commit(tracker, {8}).empty());
  }
  const auto events = commit(tracker, {8});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kDisabled);
  EXPECT_EQ(events[0].rank, 8u);
  EXPECT_EQ(events[0].index, 3u);
  // View lag: the disable lands in the view governing index 3+2=5, not
  // earlier. view_for(4) derives from commits <= 2, all pre-disable.
  EXPECT_FALSE(tracker.view_for(4).disabled(8));
  EXPECT_TRUE(tracker.view_for(5).disabled(8));
  EXPECT_EQ(tracker.view_for(5).effective_n(), 8u);
  EXPECT_EQ(tracker.max_view_index(), 5u);
}

TEST(ReliabilityTracker, GenesisViewGovernsFirstTwoIndices) {
  ReliabilityTracker tracker(config_for(4, 1));
  EXPECT_EQ(tracker.max_view_index(), 1u);
  EXPECT_EQ(tracker.view_for(0).effective_n(), 4u);
  EXPECT_EQ(tracker.view_for(1).effective_n(), 4u);
}

TEST(ReliabilityTracker, DisabledListSaturatesAtCapOnePerSuperblock) {
  // n=16: cap = floor(15/4) = 3. Five ranks go dark together; only three may
  // ever be disabled, one per superblock, lowest rank first (equal scores).
  ReliabilityTracker tracker(config_for(16, 5));
  const std::vector<std::uint32_t> dark{11, 12, 13, 14, 15};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(commit(tracker, dark).empty());
  }
  std::vector<std::uint32_t> disabled_order;
  for (int i = 0; i < 6; ++i) {
    for (const MembershipEvent& e : commit(tracker, dark)) {
      ASSERT_EQ(e.kind, MembershipEvent::Kind::kDisabled);
      disabled_order.push_back(e.rank);
    }
  }
  EXPECT_EQ(disabled_order, (std::vector<std::uint32_t>{11, 12, 13}));
  EXPECT_EQ(tracker.current_view().disabled_count(), 3u);
  EXPECT_TRUE(tracker.current_view().counts(14));  // over cap: still counted
  EXPECT_TRUE(tracker.current_view().counts(15));
  EXPECT_EQ(tracker.current_view().effective_n(), 13u);
}

TEST(ReliabilityTracker, FloodingProposerIsRemovedNotDisabled) {
  ReliabilityTracker tracker(config_for(9, 2));
  const std::uint32_t threshold = tracker.config().removal_invalid_threshold;
  // Below the threshold: incidental commit-time invalidity is not removal
  // evidence (honest proposers hit by cross-endpoint races survive).
  EXPECT_TRUE(commit(tracker, {}, 4, threshold - 1).empty());
  const auto events = commit(tracker, {}, 4, threshold);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kRemoved);
  EXPECT_EQ(events[0].rank, 4u);
  EXPECT_TRUE(tracker.current_view().removed(4));
  EXPECT_EQ(tracker.score(4), 0u);
  // Removal is permanent: contributing again never re-admits.
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(commit(tracker, {}).empty());
  }
  EXPECT_TRUE(tracker.current_view().removed(4));
  EXPECT_EQ(tracker.score(4), 0u);  // scores frozen for the removed
}

TEST(ReliabilityTracker, SlashBeatsDisableAndFreesTheCapSlot) {
  // n=5: cap = 1. Rank 4 gets disabled; then it floods and is removed —
  // the removal frees the single disabled-list slot so rank 3 (also failing)
  // can be disabled afterwards.
  ReliabilityTracker tracker(config_for(5, 1));
  for (int i = 0; i < 4; ++i) commit(tracker, {4});
  EXPECT_TRUE(tracker.current_view().disabled(4));
  EXPECT_EQ(tracker.current_view().disabled_count(), 1u);

  // Rank 3 fails too: the cap is full, so no second disable happens.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(commit(tracker, {3, 4}).empty());
  }
  EXPECT_TRUE(tracker.current_view().counts(3));

  // The disabled rank 4 floods (its slot still runs — that is by design);
  // removal and the newly-freed disable land in the same commit.
  const auto events = commit(tracker, {3}, 4, 100);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kRemoved);
  EXPECT_EQ(events[0].rank, 4u);
  EXPECT_EQ(events[1].kind, MembershipEvent::Kind::kDisabled);
  EXPECT_EQ(events[1].rank, 3u);
  EXPECT_TRUE(tracker.current_view().removed(4));
  EXPECT_TRUE(tracker.current_view().disabled(3));
  EXPECT_EQ(tracker.current_view().effective_n(), 3u);
}

TEST(ReliabilityTracker, ReadmissionRequiresScoreAndStreak) {
  ReliabilityTracker tracker(config_for(9, 2));
  for (int i = 0; i < 4; ++i) commit(tracker, {0});
  EXPECT_TRUE(tracker.current_view().disabled(0));

  // Recovery: credit=1/commit from score 0; high_water=6 and
  // readmit_window=3 are both satisfied after 6 contributing commits.
  std::vector<MembershipEvent> events;
  int commits_to_readmit = 0;
  while (tracker.current_view().disabled(0)) {
    events = commit(tracker, {});
    ++commits_to_readmit;
    ASSERT_LT(commits_to_readmit, 20);
  }
  EXPECT_EQ(commits_to_readmit, 6);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kReadmitted);
  EXPECT_EQ(events[0].rank, 0u);
  EXPECT_EQ(tracker.current_view().effective_n(), 9u);
}

TEST(ReliabilityTracker, FlappingValidatorStaysDisabled) {
  // Alternating contribute/miss: the streak never reaches readmit_window and
  // the score never climbs (credit 1 up, debit 2 down), so hysteresis holds.
  ReliabilityTracker tracker(config_for(9, 2));
  for (int i = 0; i < 4; ++i) commit(tracker, {5});
  EXPECT_TRUE(tracker.current_view().disabled(5));
  for (int i = 0; i < 40; ++i) {
    const auto events =
        (i % 2 == 0) ? commit(tracker, {}) : commit(tracker, {5});
    EXPECT_TRUE(events.empty());
  }
  EXPECT_TRUE(tracker.current_view().disabled(5));
}

TEST(ReliabilityTracker, ReadmissionRacesNewCrashAtSaturatedCap) {
  // n=9: cap = 2, both slots taken (ranks 0 and 1). Rank 0 recovers while
  // rank 2 fails: the commit that re-admits 0 also disables 2 — the swap
  // works even at cap saturation because re-admission is processed first.
  ReliabilityTracker tracker(config_for(9, 2));
  for (int i = 0; i < 4; ++i) commit(tracker, {0, 1});
  ASSERT_TRUE(tracker.current_view().disabled(0));
  for (int i = 0; i < 1; ++i) commit(tracker, {1});  // one more miss for 1
  ASSERT_TRUE(tracker.current_view().disabled(1));
  ASSERT_EQ(tracker.current_view().disabled_count(), 2u);

  // Rank 0 contributes from here (score 1, streak 1 already — it came back
  // in the commit that disabled rank 1) and reaches high_water=6 after five
  // more contributing commits. Rank 2 starts missing four commits before
  // that point (8 -> 0 at debit 2), so both thresholds cross together.
  EXPECT_TRUE(commit(tracker, {1}).empty());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(commit(tracker, {1, 2}).empty());
  }
  const auto events = commit(tracker, {1, 2});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kReadmitted);
  EXPECT_EQ(events[0].rank, 0u);
  EXPECT_EQ(events[1].kind, MembershipEvent::Kind::kDisabled);
  EXPECT_EQ(events[1].rank, 2u);
  EXPECT_EQ(tracker.current_view().disabled_count(), 2u);
  EXPECT_TRUE(tracker.current_view().counts(0));
  EXPECT_TRUE(tracker.current_view().disabled(1));
  EXPECT_TRUE(tracker.current_view().disabled(2));
}

TEST(ReliabilityTracker, CapZeroCommitteeNeverDisables) {
  // n=4: cap = floor(3/4) = 0 — adaptive membership degrades to pure
  // bookkeeping, the committee is too small to drop anyone safely.
  ReliabilityTracker tracker(config_for(4, 1));
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(commit(tracker, {3}).empty());
  }
  EXPECT_EQ(tracker.score(3), 0u);
  EXPECT_TRUE(tracker.current_view().counts(3));
  EXPECT_TRUE(tracker.events().empty());
}

TEST(ReliabilityTracker, BitForBitDeterminismAcrossSeeds) {
  // Two trackers fed the identical evidence stream must agree on every
  // fingerprint at every step, for >= 20 random streams. This is the
  // property that lets membership changes skip any extra consensus round.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    ReliabilityTracker a(config_for(9, 2));
    ReliabilityTracker b(config_for(9, 2));
    for (std::uint64_t index = 0; index < 120; ++index) {
      std::vector<bool> contrib_a(9), contrib_b(9);
      std::vector<std::uint32_t> invalid_a(9, 0), invalid_b(9, 0);
      for (std::uint32_t r = 0; r < 9; ++r) {
        contrib_a[r] = rng_a.next_bool(0.8);
        contrib_b[r] = rng_b.next_bool(0.8);
        if (rng_a.next_bool(0.02)) invalid_a[r] = 10;
        if (rng_b.next_bool(0.02)) invalid_b[r] = 10;
      }
      const auto events_a =
          a.on_superblock_committed(index, contrib_a, invalid_a);
      const auto events_b =
          b.on_superblock_committed(index, contrib_b, invalid_b);
      ASSERT_EQ(events_a, events_b) << "seed " << seed << " index " << index;
      ASSERT_EQ(a.fingerprint(), b.fingerprint())
          << "seed " << seed << " index " << index;
    }
    ASSERT_EQ(a.events(), b.events()) << "seed " << seed;
  }
}

TEST(ReliabilityTracker, FingerprintCapturesEveryTransition) {
  // Different histories with equal end-scores still differ in fingerprint
  // (the event log is folded in).
  ReliabilityTracker a(config_for(9, 2));
  ReliabilityTracker b(config_for(9, 2));
  for (int i = 0; i < 10; ++i) commit(a, {});
  for (int i = 0; i < 10; ++i) commit(b, {});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  commit(a, {3});
  commit(b, {4});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace srbb::rpm
