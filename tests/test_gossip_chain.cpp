// Tests for the modern-blockchain model (GossipChainNode): per-tx gossip,
// slot-leader block production, slot skipping, the Avalanche no-block-gossip
// mode and the under-load crash knob.
#include "chains/gossip_chain.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "diablo/client.hpp"

namespace srbb::chains {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

struct Net {
  sim::Simulation sim;
  std::unique_ptr<sim::Network> network;
  sim::GossipOverlay overlay;
  std::vector<std::unique_ptr<GossipChainNode>> validators;
  std::unique_ptr<diablo::ClientNode> client;
  std::vector<crypto::Identity> senders;

  explicit Net(ChainPreset preset, std::uint32_t n = 4) : overlay(n, 3, 5) {
    sim::NetworkConfig net_config;
    net_config.latency = sim::LatencyModel::uniform(1, millis(5));
    network = std::make_unique<sim::Network>(sim, net_config);

    node::GenesisSpec genesis;
    for (std::uint64_t i = 0; i < 64; ++i) {
      senders.push_back(scheme().make_identity(2000 + i));
      genesis.accounts.push_back({senders.back().address(), U256{1'000'000'000}});
    }
    auto oracle = std::make_shared<node::ExecutionOracle>(
        genesis, evm::BlockContext{}, scheme());
    for (std::uint32_t rank = 0; rank < n; ++rank) {
      GossipChainConfig config;
      config.n = n;
      config.self = rank;
      config.preset = preset;
      config.scheme = &scheme();
      validators.push_back(std::make_unique<GossipChainNode>(
          sim, rank, 0, config, oracle, &overlay));
      network->attach(validators.back().get());
    }
    client = std::make_unique<diablo::ClientNode>(sim, n, 0u);
    network->attach(client.get());
    for (auto& validator : validators) validator->start();
  }

  void submit(std::size_t sender, std::uint64_t nonce, sim::NodeId target,
              SimTime at) {
    txn::TxParams params;
    params.nonce = nonce;
    params.gas_limit = 30'000;
    params.to = scheme().make_identity(1).address();
    params.value = U256{1};
    client->add_submission(
        at, txn::make_tx_ptr(txn::make_signed(params, senders[sender], scheme())),
        target);
  }
};

ChainPreset fast_preset() {
  ChainPreset p = preset_quorum_ibft();
  p.block_interval = millis(200);
  p.consensus_overhead = millis(100);
  return p;
}

TEST(GossipChain, CommitsAndAcks) {
  Net net{fast_preset()};
  for (std::uint64_t i = 0; i < 10; ++i) {
    net.submit(i, 0, static_cast<sim::NodeId>(i % 4), millis(10));
  }
  net.client->start();
  net.sim.run_until(seconds(10));
  EXPECT_EQ(net.client->committed(), 10u);
  std::uint64_t committed = 0;
  for (const auto& validator : net.validators) {
    committed = std::max(committed, validator->metrics().txs_committed_valid);
  }
  EXPECT_EQ(committed, 10u);  // every replica executed all committed txs
}

TEST(GossipChain, GossipReachesEveryPool) {
  Net net{fast_preset()};
  net.submit(0, 0, 1, millis(10));
  net.client->start();
  net.sim.run_until(millis(400));  // before any slot leader takes it
  std::uint64_t eager = 0;
  for (const auto& validator : net.validators) {
    eager += validator->metrics().eager_validations;
  }
  // Validated at every validator: the §III-A redundancy.
  EXPECT_EQ(eager, 4u);
}

TEST(GossipChain, LeadersRotate) {
  Net net{fast_preset()};
  for (std::uint64_t i = 0; i < 40; ++i) {
    net.submit(i % 64, i / 64, static_cast<sim::NodeId>(i % 4),
               millis(10 + 40 * i));
  }
  net.client->start();
  net.sim.run_until(seconds(10));
  std::uint32_t proposers = 0;
  for (const auto& validator : net.validators) {
    proposers += validator->metrics().blocks_proposed > 0 ? 1 : 0;
  }
  EXPECT_GE(proposers, 3u);  // multiple distinct slot leaders produced blocks
}

TEST(GossipChain, AvalancheModeStillCommits) {
  ChainPreset p = preset_avalanche();
  p.block_interval = millis(200);
  p.consensus_overhead = millis(100);
  Net net{p};
  for (std::uint64_t i = 0; i < 5; ++i) {
    net.submit(i, 0, static_cast<sim::NodeId>(i % 4), millis(10));
  }
  net.client->start();
  net.sim.run_until(seconds(10));
  EXPECT_EQ(net.client->committed(), 5u);
}

TEST(GossipChain, CrashKnobStopsTheNode) {
  ChainPreset p = fast_preset();
  p.pool.capacity = 4;
  p.crash_after_pool_drops = 3;
  Net net{p};
  // Flood one validator far past its pool.
  for (std::uint64_t i = 0; i < 30; ++i) {
    net.submit(i, 0, 0, millis(5));
  }
  net.client->start();
  net.sim.run_until(seconds(5));
  EXPECT_TRUE(net.validators[0]->metrics().crashed);
}

TEST(GossipChain, OverloadDropsButNeverInventsTransactions) {
  ChainPreset p = fast_preset();
  p.max_block_txs = 2;  // tiny capacity
  p.pool.capacity = 8;
  Net net{p};
  for (std::uint64_t i = 0; i < 60; ++i) {
    net.submit(i % 64, 0, static_cast<sim::NodeId>(i % 4), millis(5 + i));
  }
  net.client->start();
  net.sim.run_until(seconds(8));
  EXPECT_LE(net.client->committed(), 60u);
  EXPECT_GT(net.client->committed(), 0u);
  std::uint64_t drops = 0;
  for (const auto& validator : net.validators) {
    drops += validator->tx_pool().dropped_full();
  }
  EXPECT_GT(drops, 0u);  // saturation observed
}

}  // namespace
}  // namespace srbb::chains
