#include "rpm/committee.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace srbb::rpm {
namespace {

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

CommitteeConfig small_config() {
  CommitteeConfig c;
  c.committee_size = 4;
  c.epoch_length = 10;
  c.min_deposit = U256{100};
  c.withdraw_lock_epochs = 2;
  return c;
}

TEST(Committee, RejectsBelowMinimumDeposit) {
  CommitteeManager mgr{small_config()};
  EXPECT_FALSE(mgr.add_candidate(addr(1), U256{99}));
  EXPECT_TRUE(mgr.add_candidate(addr(1), U256{100}));
  EXPECT_TRUE(mgr.is_candidate(addr(1)));
}

TEST(Committee, TopUpAccumulates) {
  CommitteeManager mgr{small_config()};
  mgr.add_candidate(addr(1), U256{100});
  mgr.add_candidate(addr(1), U256{150});
  EXPECT_EQ(mgr.deposit_of(addr(1)), U256{250});
  EXPECT_EQ(mgr.candidate_count(), 1u);
}

TEST(Committee, EpochOfBlock) {
  CommitteeManager mgr{small_config()};
  EXPECT_EQ(mgr.epoch_of_block(0), 0u);
  EXPECT_EQ(mgr.epoch_of_block(9), 0u);
  EXPECT_EQ(mgr.epoch_of_block(10), 1u);
  EXPECT_EQ(mgr.epoch_of_block(25), 2u);
}

TEST(Committee, SelectionDeterministicAndSized) {
  CommitteeManager mgr{small_config()};
  for (std::uint8_t i = 0; i < 10; ++i) mgr.add_candidate(addr(i), U256{100});
  Hash32 rand;
  rand[0] = 7;
  const auto a = mgr.committee(3, rand);
  const auto b = mgr.committee(3, rand);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
  // All members are distinct candidates.
  std::set<Address> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Committee, RotatesAcrossEpochs) {
  CommitteeManager mgr{small_config()};
  for (std::uint8_t i = 0; i < 20; ++i) mgr.add_candidate(addr(i), U256{100});
  Hash32 rand;
  bool changed = false;
  const auto first = mgr.committee(0, rand);
  for (std::uint64_t epoch = 1; epoch < 10; ++epoch) {
    if (mgr.committee(epoch, rand) != first) changed = true;
  }
  EXPECT_TRUE(changed);  // a slowly-adaptive adversary cannot pin a committee
}

TEST(Committee, EveryCandidateEventuallySelected) {
  // §IV-E: selection is random and periodic, so each candidate is eventually
  // chosen.
  CommitteeManager mgr{small_config()};
  for (std::uint8_t i = 0; i < 8; ++i) mgr.add_candidate(addr(i), U256{100});
  Hash32 rand;
  std::set<Address> seen;
  for (std::uint64_t epoch = 0; epoch < 200 && seen.size() < 8; ++epoch) {
    for (const Address& a : mgr.committee(epoch, rand)) seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Committee, SmallCandidatePoolYieldsAllOfThem) {
  CommitteeManager mgr{small_config()};
  mgr.add_candidate(addr(1), U256{100});
  mgr.add_candidate(addr(2), U256{100});
  Hash32 rand;
  const auto committee = mgr.committee(0, rand);
  EXPECT_EQ(committee.size(), 2u);
}

TEST(Committee, ExcludedCandidateNeverSelected) {
  CommitteeManager mgr{small_config()};
  for (std::uint8_t i = 0; i < 6; ++i) mgr.add_candidate(addr(i), U256{100});
  mgr.exclude(addr(3));
  Hash32 rand;
  for (std::uint64_t epoch = 0; epoch < 50; ++epoch) {
    const auto committee = mgr.committee(epoch, rand);
    EXPECT_EQ(std::find(committee.begin(), committee.end(), addr(3)),
              committee.end());
  }
}

TEST(Committee, WithdrawLockedThenClaimable) {
  CommitteeManager mgr{small_config()};
  mgr.add_candidate(addr(1), U256{500});
  EXPECT_TRUE(mgr.request_withdraw(addr(1), 10));
  EXPECT_FALSE(mgr.request_withdraw(addr(1), 10));  // double request
  // Locked for 2 epochs.
  EXPECT_EQ(mgr.claim_withdraw(addr(1), 10), U256::zero());
  EXPECT_EQ(mgr.claim_withdraw(addr(1), 11), U256::zero());
  EXPECT_EQ(mgr.claim_withdraw(addr(1), 12), U256{500});
  EXPECT_FALSE(mgr.is_candidate(addr(1)));  // fully exited
}

TEST(Committee, WithdrawOfUnknownIsZero) {
  CommitteeManager mgr{small_config()};
  EXPECT_FALSE(mgr.request_withdraw(addr(9), 0));
  EXPECT_EQ(mgr.claim_withdraw(addr(9), 100), U256::zero());
}

TEST(Committee, DifferentRandomnessDifferentDraws) {
  CommitteeManager mgr{small_config()};
  for (std::uint8_t i = 0; i < 30; ++i) mgr.add_candidate(addr(i), U256{100});
  Hash32 r1;
  Hash32 r2;
  r2[5] = 0x44;
  EXPECT_NE(mgr.committee(0, r1), mgr.committee(0, r2));
}

}  // namespace
}  // namespace srbb::rpm
