#include "evm/precompiles.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"
#include "evm/asm.hpp"
#include "evm/interpreter.hpp"

namespace srbb::evm {
namespace {

Address precompile_addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

TEST(Precompiles, AddressRecognition) {
  EXPECT_TRUE(is_precompile(precompile_addr(0x01)));
  EXPECT_TRUE(is_precompile(precompile_addr(0x02)));
  EXPECT_TRUE(is_precompile(precompile_addr(0x04)));
  EXPECT_FALSE(is_precompile(precompile_addr(0x03)));
  EXPECT_FALSE(is_precompile(precompile_addr(0x00)));
  Address high;
  high[0] = 1;
  high[19] = 0x02;
  EXPECT_FALSE(is_precompile(high));
}

TEST(Precompiles, Sha256MatchesLibrary) {
  const Bytes input{0x01, 0x02, 0x03};
  const ExecResult r = run_precompile(precompile_addr(0x02), input, 100000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, crypto::Sha256::hash(input).bytes());
  EXPECT_EQ(r.gas_left, 100000u - 60 - 12);
}

TEST(Precompiles, IdentityCopies) {
  const Bytes input(77, 0xAB);
  const ExecResult r = run_precompile(precompile_addr(0x04), input, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, input);
  EXPECT_EQ(r.gas_left, 1000u - 15 - 3 * 3);
}

TEST(Precompiles, OutOfGasFails) {
  const Bytes input(32, 0);
  EXPECT_EQ(run_precompile(precompile_addr(0x02), input, 10).status,
            ExecStatus::kOutOfGas);
  EXPECT_EQ(run_precompile(precompile_addr(0x01), input, 100).status,
            ExecStatus::kOutOfGas);
}

TEST(Precompiles, SigVerifyAcceptsValid) {
  const auto kp = crypto::ed25519_keypair_from_id(5);
  const Hash32 digest = crypto::Sha256::hash(Bytes{1, 2, 3});
  const crypto::Signature sig = crypto::ed25519_sign(digest.view(), kp);
  Bytes input;
  append(input, digest.view());
  append(input, BytesView{kp.public_key.data(), 32});
  append(input, BytesView{sig.data(), 64});
  const ExecResult r = run_precompile(precompile_addr(0x01), input, 10000);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.output.size(), 32u);
  EXPECT_EQ(r.output[31], 1);
}

TEST(Precompiles, SigVerifyRejectsInvalidAndMalformed) {
  const auto kp = crypto::ed25519_keypair_from_id(6);
  const Hash32 digest = crypto::Sha256::hash(Bytes{9});
  crypto::Signature sig = crypto::ed25519_sign(digest.view(), kp);
  sig[0] ^= 1;
  Bytes input;
  append(input, digest.view());
  append(input, BytesView{kp.public_key.data(), 32});
  append(input, BytesView{sig.data(), 64});
  const ExecResult bad = run_precompile(precompile_addr(0x01), input, 10000);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.output[31], 0);
  // Wrong length -> false, not failure.
  const ExecResult short_input =
      run_precompile(precompile_addr(0x01), Bytes(10, 0), 10000);
  ASSERT_TRUE(short_input.ok());
  EXPECT_EQ(short_input.output[31], 0);
}

TEST(Precompiles, ReachableViaStaticcallFromContract) {
  // Contract hashes its 32-byte calldata through the sha256 precompile:
  //   calldatacopy(0, 0, 32)
  //   staticcall(gas, 0x02, 0, 32, 32, 32)
  //   return(32, 32)
  state::StateDB db;
  const auto code = assemble(R"(
    PUSH1 32 PUSH1 0 PUSH1 0 CALLDATACOPY
    PUSH1 32 PUSH1 32 PUSH1 32 PUSH1 0 PUSH1 2 GAS STATICCALL
    POP
    PUSH1 32 PUSH1 32 RETURN
  )");
  ASSERT_TRUE(code.is_ok()) << code.message();
  Address contract;
  contract[19] = 0xCC;
  db.set_code(contract, code.value());
  Evm evm{db, {}, {}};
  Message msg;
  msg.to = contract;
  msg.gas = 1'000'000;
  msg.data = Bytes(32, 0x5A);
  const ExecResult r = evm.execute(msg);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(r.output, crypto::Sha256::hash(Bytes(32, 0x5A)).bytes());
}

TEST(Precompiles, UnknownReservedAddressIsPlainAccount) {
  // Address 0x03 is not implemented: calls to it behave like empty code.
  state::StateDB db;
  Evm evm{db, {}, {}};
  Message msg;
  msg.to = precompile_addr(0x03);
  msg.gas = 1000;
  const ExecResult r = evm.execute(msg);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.output.empty());
}

}  // namespace
}  // namespace srbb::evm
