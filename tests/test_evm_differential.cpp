// Differential property test: every EVM arithmetic/comparison/bitwise opcode
// must agree with the U256 library when executed through real bytecode on
// random operands. This cross-checks the interpreter's operand ordering and
// the gas-metered path against the unit-tested arithmetic core.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "evm/asm.hpp"
#include "evm/interpreter.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm {
namespace {

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

U256 rand_word(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return U256{rng.next_u64()};
    case 1:
      return U256{rng.next_u64(), rng.next_u64(), 0, 0};
    case 2:
      return U256{rng.next_u64(), rng.next_u64(), rng.next_u64(),
                  rng.next_u64()};
    default:
      return U256{rng.next_below(3)};  // tiny values hit edge cases
  }
}

// Run "PUSH b PUSH a OP RETURN-top": a is the top operand.
U256 run_binop(Opcode op, const U256& a, const U256& b) {
  state::StateDB db;
  Program p;
  p.push(b);
  p.push(a);
  p.op(op);
  p.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  auto code = p.build();
  EXPECT_TRUE(code.is_ok());
  const Address contract = addr(0x51);
  db.set_code(contract, code.value());
  Evm evm{db, {}, {}};
  Message msg;
  msg.to = contract;
  msg.gas = 10'000'000;
  const ExecResult r = evm.execute(msg);
  EXPECT_TRUE(r.ok()) << to_string(r.status);
  return U256::from_be(r.output);
}

U256 bool_word(bool b) { return b ? U256::one() : U256::zero(); }

class EvmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmDifferential, BinaryOpsMatchU256) {
  Rng rng{GetParam()};
  for (int i = 0; i < 60; ++i) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);
    EXPECT_EQ(run_binop(Opcode::ADD, a, b), a + b);
    EXPECT_EQ(run_binop(Opcode::SUB, a, b), a - b);
    EXPECT_EQ(run_binop(Opcode::MUL, a, b), a * b);
    EXPECT_EQ(run_binop(Opcode::DIV, a, b), a / b);
    EXPECT_EQ(run_binop(Opcode::MOD, a, b), a % b);
    EXPECT_EQ(run_binop(Opcode::SDIV, a, b), sdiv(a, b));
    EXPECT_EQ(run_binop(Opcode::SMOD, a, b), smod(a, b));
    EXPECT_EQ(run_binop(Opcode::AND, a, b), a & b);
    EXPECT_EQ(run_binop(Opcode::OR, a, b), a | b);
    EXPECT_EQ(run_binop(Opcode::XOR, a, b), a ^ b);
    EXPECT_EQ(run_binop(Opcode::LT, a, b), bool_word(a < b));
    EXPECT_EQ(run_binop(Opcode::GT, a, b), bool_word(a > b));
    EXPECT_EQ(run_binop(Opcode::SLT, a, b), bool_word(slt(a, b)));
    EXPECT_EQ(run_binop(Opcode::SGT, a, b), bool_word(sgt(a, b)));
    EXPECT_EQ(run_binop(Opcode::EQ, a, b), bool_word(a == b));
  }
}

TEST_P(EvmDifferential, ShiftsMatchU256) {
  Rng rng{GetParam() * 3 + 1};
  for (int i = 0; i < 60; ++i) {
    const U256 value = rand_word(rng);
    const U256 shift{rng.next_below(300)};  // sometimes >= 256
    const unsigned n = static_cast<unsigned>(shift.as_u64());
    EXPECT_EQ(run_binop(Opcode::SHL, shift, value),
              n < 256 ? value << n : U256::zero());
    EXPECT_EQ(run_binop(Opcode::SHR, shift, value),
              n < 256 ? value >> n : U256::zero());
    EXPECT_EQ(run_binop(Opcode::SAR, shift, value), sar(value, n < 256 ? n : 256));
  }
}

TEST_P(EvmDifferential, TernaryModOpsMatchU256) {
  Rng rng{GetParam() * 7 + 5};
  for (int i = 0; i < 40; ++i) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);
    const U256 m = rand_word(rng);
    // ADDMOD: stack top is a, then b, then m.
    state::StateDB db;
    for (const Opcode op : {Opcode::ADDMOD, Opcode::MULMOD}) {
      Program p;
      p.push(m);
      p.push(b);
      p.push(a);
      p.op(op);
      p.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
      auto code = p.build();
      ASSERT_TRUE(code.is_ok());
      const Address contract = addr(0x52);
      db.set_code(contract, code.value());
      Evm evm{db, {}, {}};
      Message msg;
      msg.to = contract;
      msg.gas = 10'000'000;
      const ExecResult r = evm.execute(msg);
      ASSERT_TRUE(r.ok());
      const U256 expected =
          op == Opcode::ADDMOD ? addmod(a, b, m) : mulmod(a, b, m);
      EXPECT_EQ(U256::from_be(r.output), expected);
    }
  }
}

TEST_P(EvmDifferential, UnaryOpsMatchU256) {
  Rng rng{GetParam() * 11 + 3};
  for (int i = 0; i < 60; ++i) {
    const U256 a = rand_word(rng);
    state::StateDB db;
    Program p;
    p.push(a);
    p.op(Opcode::NOT);
    p.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
    auto code = p.build();
    ASSERT_TRUE(code.is_ok());
    const Address contract = addr(0x53);
    db.set_code(contract, code.value());
    Evm evm{db, {}, {}};
    Message msg;
    msg.to = contract;
    msg.gas = 1'000'000;
    const ExecResult r = evm.execute(msg);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(U256::from_be(r.output), ~a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmDifferential,
                         ::testing::Values(1001ull, 2002ull, 3003ull));

}  // namespace
}  // namespace srbb::evm
