#include "pool/txpool.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"

namespace srbb::pool {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

txn::TxPtr tx_ptr(std::uint64_t sender, std::uint64_t nonce) {
  txn::TxParams params;
  params.nonce = nonce;
  return txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(sender), scheme()));
}

TEST(TxPool, AddAndTakeFifo) {
  TxPool pool;
  pool.add(tx_ptr(1, 0), 0);
  pool.add(tx_ptr(1, 1), 0);
  pool.add(tx_ptr(2, 0), 0);
  EXPECT_EQ(pool.size(), 3u);
  const auto batch = pool.take_batch(10, 0, 0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->tx.nonce, 0u);
  EXPECT_EQ(batch[1]->tx.nonce, 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(TxPool, RejectsDuplicates) {
  TxPool pool;
  const auto t = tx_ptr(1, 0);
  EXPECT_EQ(pool.add(t, 0), TxPool::AddResult::kAdded);
  EXPECT_EQ(pool.add(t, 0), TxPool::AddResult::kDuplicate);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, DropsWhenFull) {
  TxPool pool{TxPoolConfig{.capacity = 2}};
  EXPECT_EQ(pool.add(tx_ptr(1, 0), 0), TxPool::AddResult::kAdded);
  EXPECT_EQ(pool.add(tx_ptr(1, 1), 0), TxPool::AddResult::kAdded);
  EXPECT_EQ(pool.add(tx_ptr(1, 2), 0), TxPool::AddResult::kFull);
  EXPECT_EQ(pool.dropped_full(), 1u);
  EXPECT_EQ(pool.admitted(), 2u);
}

TEST(TxPool, BatchRespectsCountLimit) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 10; ++i) pool.add(tx_ptr(1, i), 0);
  const auto batch = pool.take_batch(4, 0, 0);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(pool.size(), 6u);
}

TEST(TxPool, BatchRespectsByteLimit) {
  TxPool pool;
  const auto t = tx_ptr(1, 0);
  const std::size_t one_size = t->size;
  pool.add(t, 0);
  pool.add(tx_ptr(1, 1), 0);
  pool.add(tx_ptr(1, 2), 0);
  const auto batch = pool.take_batch(10, 2 * one_size + 1, 0);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(TxPool, TtlExpiresEntries) {
  TxPool pool{TxPoolConfig{.capacity = 100, .ttl = seconds(10)}};
  pool.add(tx_ptr(1, 0), 0);
  pool.add(tx_ptr(1, 1), seconds(5));
  // At t=10s, the first entry is expired, the second not.
  const auto batch = pool.take_batch(10, 0, seconds(10));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->tx.nonce, 1u);
  EXPECT_EQ(pool.dropped_expired(), 1u);
}

TEST(TxPool, ZeroTtlNeverExpires) {
  TxPool pool;
  pool.add(tx_ptr(1, 0), 0);
  const auto batch = pool.take_batch(10, 0, seconds(100000));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(TxPool, RemoveCommitted) {
  TxPool pool;
  const auto a = tx_ptr(1, 0);
  const auto b = tx_ptr(1, 1);
  const auto c = tx_ptr(2, 0);
  pool.add(a, 0);
  pool.add(b, 0);
  pool.add(c, 0);
  pool.remove_committed({a->hash, c->hash});
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(b->hash));
  EXPECT_FALSE(pool.contains(a->hash));
}

TEST(TxPool, RemoveCommittedUnknownHashesIsNoop) {
  TxPool pool;
  pool.add(tx_ptr(1, 0), 0);
  Hash32 ghost;
  ghost[0] = 0xff;
  pool.remove_committed({ghost});
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, TakenTxCanBeReadded) {
  // Alg. 1 line 31: undecided-block transactions go back into the pool.
  TxPool pool;
  const auto t = tx_ptr(1, 0);
  pool.add(t, 0);
  auto batch = pool.take_batch(1, 0, 0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(pool.add(batch[0], 0), TxPool::AddResult::kAdded);
  EXPECT_TRUE(pool.contains(t->hash));
}

}  // namespace
}  // namespace srbb::pool
