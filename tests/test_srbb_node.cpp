// End-to-end tests of the SRBB validator network on the simulated wire:
// liveness and safety of Def. 1, the TVPR message/validation reductions,
// undecided-block recycling, and the flooding attack with and without RPM.
#include "srbb/validator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "evm/contracts.hpp"

namespace srbb::node {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

class TestClient : public sim::SimNode {
 public:
  using sim::SimNode::SimNode;

  void handle_message(sim::NodeId, const sim::MessagePtr& message) override {
    if (const auto* ack = dynamic_cast<const CommitAckMsg*>(message.get())) {
      committed_at[ack->tx_hash] = now();
      executed_ok[ack->tx_hash] = ack->executed_ok;
    }
  }

  void submit(sim::NodeId validator, const txn::TxPtr& tx) {
    sent_at[tx->hash] = now();
    auto msg = std::make_shared<ClientTxMsg>();
    msg->tx = tx;
    send(validator, msg);
  }

  std::map<Hash32, SimTime> sent_at;
  std::map<Hash32, SimTime> committed_at;
  std::map<Hash32, bool> executed_ok;
};

struct NetOptions {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  bool tvpr = true;
  bool rpm = false;
  bool replicated_execution = true;
  std::vector<ValidatorBehavior> behaviors;  // per rank; default correct
  std::size_t client_accounts = 8;
};

struct Net {
  sim::Simulation sim;
  std::unique_ptr<sim::Network> network;
  sim::GossipOverlay overlay;
  GenesisSpec genesis;
  std::shared_ptr<rpm::RewardPenaltyMechanism> rpm_contract;
  std::vector<std::unique_ptr<ValidatorNode>> validators;
  std::unique_ptr<TestClient> client;
  std::vector<crypto::Identity> senders;

  explicit Net(const NetOptions& opts) : overlay(opts.n, 4, 7) {
    sim::NetworkConfig net_config;
    net_config.latency = sim::LatencyModel::uniform(1, millis(5));
    network = std::make_unique<sim::Network>(sim, net_config);

    for (std::size_t i = 0; i < opts.client_accounts; ++i) {
      senders.push_back(scheme().make_identity(1000 + i));
      genesis.accounts.push_back({senders.back().address(), U256{1'000'000'000}});
    }

    rpm::RpmConfig rpm_config;
    rpm_config.n = opts.n;
    rpm_config.f = opts.f;
    rpm_config.scheme = &scheme();
    rpm_contract = std::make_shared<rpm::RewardPenaltyMechanism>(rpm_config);

    evm::BlockContext block_template;
    std::shared_ptr<ExecutionOracle> shared_oracle;
    if (!opts.replicated_execution) {
      shared_oracle =
          std::make_shared<ExecutionOracle>(genesis, block_template, scheme());
    }

    for (std::uint32_t rank = 0; rank < opts.n; ++rank) {
      ValidatorConfig config;
      config.n = opts.n;
      config.f = opts.f;
      config.self = rank;
      config.tvpr = opts.tvpr;
      config.rpm = opts.rpm;
      config.scheme = &scheme();
      config.min_block_interval = millis(100);
      config.proposal_timeout = millis(300);
      if (rank < opts.behaviors.size()) config.behavior = opts.behaviors[rank];
      auto oracle =
          opts.replicated_execution
              ? std::make_shared<ExecutionOracle>(genesis, block_template,
                                                  scheme())
              : shared_oracle;
      validators.push_back(std::make_unique<ValidatorNode>(
          sim, rank, 0, config, oracle, rpm_contract, &overlay));
      network->attach(validators.back().get());
      rpm_contract->register_validator(
          validators.back()->identity().address(), U256{1'000'000});
    }
    client = std::make_unique<TestClient>(sim, opts.n, 0u);
    network->attach(client.get());

    for (auto& validator : validators) validator->start();
  }

  txn::TxPtr transfer(std::size_t sender, std::uint64_t nonce) {
    txn::TxParams params;
    params.nonce = nonce;
    params.to = scheme().make_identity(5).address();
    params.value = U256{100};
    return txn::make_tx_ptr(
        txn::make_signed(params, senders[sender], scheme()));
  }

  void run_for(SimDuration duration) { sim.run_until(sim.now() + duration); }
};

TEST(SrbbLiveness, ClientTxCommitsEverywhere) {
  Net net{NetOptions{}};
  const txn::TxPtr tx = net.transfer(0, 0);
  net.sim.schedule_at(millis(10), [&] { net.client->submit(0, tx); });
  net.run_for(seconds(5));

  // Liveness: the transaction is in the chain of every correct validator.
  for (const auto& validator : net.validators) {
    EXPECT_EQ(validator->metrics().txs_committed_valid, 1u);
  }
  // The client observed the commit.
  ASSERT_TRUE(net.client->committed_at.contains(tx->hash));
  EXPECT_TRUE(net.client->executed_ok.at(tx->hash));
}

TEST(SrbbLiveness, ManyTxsFromManySendersAllCommit) {
  Net net{NetOptions{}};
  std::vector<txn::TxPtr> txs;
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::uint64_t nonce = 0; nonce < 5; ++nonce) {
      txs.push_back(net.transfer(s, nonce));
    }
  }
  net.sim.schedule_at(millis(10), [&] {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      // Spread across validators; nonces for one sender go to one validator
      // to keep them ordered.
      net.client->submit(static_cast<sim::NodeId>((i / 5) % 4), txs[i]);
    }
  });
  net.run_for(seconds(10));
  for (const auto& tx : txs) {
    EXPECT_TRUE(net.client->committed_at.contains(tx->hash));
  }
  for (const auto& validator : net.validators) {
    EXPECT_EQ(validator->metrics().txs_committed_valid, txs.size());
  }
}

TEST(SrbbSafety, ReplicatedExecutionConvergesToSameRoot) {
  NetOptions opts;
  opts.replicated_execution = true;
  Net net{opts};
  for (std::size_t s = 0; s < 4; ++s) {
    const auto tx = net.transfer(s, 0);
    net.sim.schedule_at(millis(10 + s), [&net, tx, s] {
      net.client->submit(static_cast<sim::NodeId>(s % 4), tx);
    });
  }
  net.run_for(seconds(5));

  // Safety: chains are prefix-comparable and executed state is identical at
  // a common height.
  const std::uint64_t min_height =
      std::min({net.validators[0]->chain_height(), net.validators[1]->chain_height(),
                net.validators[2]->chain_height(), net.validators[3]->chain_height()});
  ASSERT_GT(min_height, 0u);
  for (std::uint64_t h = 0; h < min_height; ++h) {
    for (std::size_t v = 1; v < 4; ++v) {
      EXPECT_EQ(net.validators[v]->chain()[h], net.validators[0]->chain()[h])
          << "chain diverges at height " << h << " validator " << v;
    }
  }
}

TEST(SrbbTvpr, NoIndividualTxPropagationWhenEnabled) {
  NetOptions opts;
  opts.tvpr = true;
  Net net{opts};
  for (std::uint64_t nonce = 0; nonce < 10; ++nonce) {
    const auto tx = net.transfer(0, nonce);
    net.sim.schedule_at(millis(10), [&net, tx] { net.client->submit(1, tx); });
  }
  net.run_for(seconds(5));
  std::uint64_t gossip_sent = 0;
  std::uint64_t eager = 0;
  for (const auto& validator : net.validators) {
    gossip_sent += validator->metrics().gossip_txs_sent;
    eager += validator->metrics().eager_validations;
  }
  EXPECT_EQ(gossip_sent, 0u);  // Alg. 1 line 9 removed
  // Only the receiving validator eagerly validates: ~1 per transaction.
  EXPECT_LE(eager, 12u);
}

TEST(SrbbTvpr, ModernModeValidatesAtEveryValidator) {
  NetOptions opts;
  opts.tvpr = false;
  Net net{opts};
  for (std::uint64_t nonce = 0; nonce < 10; ++nonce) {
    const auto tx = net.transfer(0, nonce);
    net.sim.schedule_at(millis(10), [&net, tx] { net.client->submit(1, tx); });
  }
  net.run_for(seconds(5));
  std::uint64_t gossip_sent = 0;
  std::uint64_t eager = 0;
  for (const auto& validator : net.validators) {
    gossip_sent += validator->metrics().gossip_txs_sent;
    eager += validator->metrics().eager_validations;
  }
  EXPECT_GT(gossip_sent, 0u);
  // Every validator validates each transaction once: ~n per tx.
  EXPECT_GE(eager, 4u * 10u);
  // And the transactions still commit (same guarantees, more work).
  EXPECT_EQ(net.validators[0]->metrics().txs_committed_valid, 10u);
}

TEST(SrbbFaults, SilentValidatorDoesNotBlockProgress) {
  NetOptions opts;
  opts.behaviors.resize(4);
  opts.behaviors[3].silent = true;
  Net net{opts};
  const auto tx = net.transfer(0, 0);
  net.sim.schedule_at(millis(10), [&] { net.client->submit(0, tx); });
  net.run_for(seconds(5));
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(net.validators[v]->metrics().txs_committed_valid, 1u) << v;
  }
  EXPECT_TRUE(net.client->committed_at.contains(tx->hash));
}

TEST(SrbbFaults, CensoringValidatorDelaysButOthersCommitOwnTxs) {
  NetOptions opts;
  opts.behaviors.resize(4);
  opts.behaviors[0].censor = true;  // drops every client tx from proposals
  Net net{opts};
  const auto censored = net.transfer(0, 0);
  const auto healthy = net.transfer(1, 0);
  net.sim.schedule_at(millis(10), [&] {
    net.client->submit(0, censored);  // to the censor
    net.client->submit(1, healthy);   // to a correct validator
  });
  net.run_for(seconds(5));
  // §VI: with TVPR there is no tx gossip, so the censored tx never appears.
  EXPECT_FALSE(net.client->committed_at.contains(censored->hash));
  EXPECT_TRUE(net.client->committed_at.contains(healthy->hash));
}

TEST(SrbbFlooding, InvalidTxsDiscardedNoValidLoss) {
  NetOptions opts;
  opts.rpm = false;
  opts.behaviors.resize(4);
  opts.behaviors[3].flood_invalid_per_block = 50;  // §V-B attack
  Net net{opts};
  std::vector<txn::TxPtr> txs;
  for (std::size_t s = 0; s < 8; ++s) txs.push_back(net.transfer(s, 0));
  net.sim.schedule_at(millis(10), [&] {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      net.client->submit(static_cast<sim::NodeId>(i % 3), txs[i]);
    }
  });
  net.run_for(seconds(5));
  // All valid transactions commit; the flood is discarded at execution.
  for (const auto& tx : txs) {
    EXPECT_TRUE(net.client->committed_at.contains(tx->hash));
  }
  EXPECT_GT(net.validators[0]->metrics().txs_discarded_invalid, 0u);
}

TEST(SrbbFlooding, RpmSlashesAndExcludesTheFlooder) {
  NetOptions opts;
  opts.rpm = true;
  opts.behaviors.resize(4);
  opts.behaviors[3].flood_invalid_per_block = 20;
  Net net{opts};
  const Address byz_addr = net.validators[3]->identity().address();
  const U256 deposit_before = net.rpm_contract->deposit_of(byz_addr);
  EXPECT_GT(deposit_before, U256::zero());

  net.sim.schedule_at(millis(10), [&] {
    net.client->submit(0, net.transfer(0, 0));
  });
  net.run_for(seconds(8));

  // Theorem 1 end-to-end: the flooder was slashed to zero and excluded.
  EXPECT_TRUE(net.rpm_contract->is_excluded(byz_addr));
  EXPECT_EQ(net.rpm_contract->deposit_of(byz_addr), U256::zero());
  ASSERT_FALSE(net.rpm_contract->slash_events().empty());
  EXPECT_EQ(net.rpm_contract->slash_events()[0].validator, byz_addr);

  // After exclusion its blocks are rejected: eventually superblocks carry no
  // invalid transactions. Correct validators keep their (grown) deposits.
  for (std::size_t v = 0; v < 3; ++v) {
    const Address addr = net.validators[v]->identity().address();
    EXPECT_FALSE(net.rpm_contract->is_excluded(addr));
    EXPECT_GE(net.rpm_contract->deposit_of(addr), U256{1'000'000});
  }
}

TEST(SrbbRecycling, UndecidedBlockTxsReenterThePool) {
  // With a very short proposal timeout, some proposals miss the cut and
  // decide 0; their transactions must be recycled and commit later
  // (Alg. 1 lines 27-31 liveness path).
  NetOptions opts;
  Net net{opts};
  std::vector<txn::TxPtr> txs;
  for (std::size_t s = 0; s < 8; ++s) txs.push_back(net.transfer(s, 0));
  net.sim.schedule_at(millis(10), [&] {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      net.client->submit(static_cast<sim::NodeId>(i % 4), txs[i]);
    }
  });
  net.run_for(seconds(10));
  for (const auto& tx : txs) {
    EXPECT_TRUE(net.client->committed_at.contains(tx->hash));
  }
}

TEST(SrbbFaults, LargerCommitteeToleratesMaxSilentFaults) {
  // n = 10, f = 3: the three highest ranks are silent; liveness and safety
  // must hold for the remaining seven.
  NetOptions opts;
  opts.n = 10;
  opts.f = 3;
  opts.behaviors.resize(10);
  opts.behaviors[7].silent = true;
  opts.behaviors[8].silent = true;
  opts.behaviors[9].silent = true;
  Net net{opts};
  std::vector<txn::TxPtr> txs;
  for (std::size_t s = 0; s < 6; ++s) txs.push_back(net.transfer(s, 0));
  net.sim.schedule_at(millis(10), [&] {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      net.client->submit(static_cast<sim::NodeId>(i % 7), txs[i]);
    }
  });
  net.run_for(seconds(10));
  for (const auto& tx : txs) {
    EXPECT_TRUE(net.client->committed_at.contains(tx->hash));
  }
  const std::uint64_t height0 = net.validators[0]->chain_height();
  ASSERT_GT(height0, 0u);
  for (std::size_t v = 1; v < 7; ++v) {
    const std::uint64_t h =
        std::min(height0, net.validators[v]->chain_height());
    for (std::uint64_t i = 0; i < h; ++i) {
      EXPECT_EQ(net.validators[v]->chain()[i], net.validators[0]->chain()[i]);
    }
  }
}

TEST(SrbbReception, InvalidClientTxDroppedAtEagerValidation) {
  Net net{NetOptions{}};
  // Zero-balance sender: eager validation must reject it at reception and
  // it must never commit anywhere.
  txn::TxParams params;
  params.nonce = 0;
  params.gas_limit = 30'000;
  params.to = scheme().make_identity(5).address();
  params.value = U256{1};
  const auto broke_tx = txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(987654), scheme()));
  net.sim.schedule_at(millis(10), [&] { net.client->submit(0, broke_tx); });
  net.run_for(seconds(3));
  EXPECT_FALSE(net.client->committed_at.contains(broke_tx->hash));
  EXPECT_EQ(net.validators[0]->metrics().eager_failures, 1u);
  EXPECT_EQ(net.validators[0]->metrics().txs_committed_valid, 0u);
}

TEST(SrbbReception, BadSignatureDroppedAtEagerValidation) {
  Net net{NetOptions{}};
  txn::TxParams params;
  params.nonce = 0;
  params.gas_limit = 30'000;
  params.to = scheme().make_identity(5).address();
  txn::Transaction tx = txn::make_signed(params, net.senders[0], scheme());
  tx.signature[4] ^= 1;
  const auto bad = txn::make_tx_ptr(std::move(tx));
  net.sim.schedule_at(millis(10), [&] { net.client->submit(1, bad); });
  net.run_for(seconds(3));
  EXPECT_FALSE(net.client->committed_at.contains(bad->hash));
  EXPECT_EQ(net.validators[1]->metrics().eager_failures, 1u);
}

TEST(SrbbCommit, RevertedInvocationAcksWithFailureFlag) {
  // A valid transaction whose EVM frame reverts is still committed (it
  // consumed gas); the client learns executed_ok == false.
  Net net{NetOptions{}};
  txn::TxParams deploy;
  deploy.kind = txn::TxKind::kDeploy;
  deploy.nonce = 0;
  deploy.gas_limit = 5'000'000;
  deploy.data = evm::ticketing_contract().deploy_code;
  const auto deploy_tx =
      txn::make_tx_ptr(txn::make_signed(deploy, net.senders[0], scheme()));
  net.sim.schedule_at(millis(10), [&] { net.client->submit(0, deploy_tx); });
  net.run_for(seconds(3));
  const Address tix = evm::create_address(net.senders[0].address(), 0);

  // Sender 0 buys seat (1,1); sender 1 tries the same seat -> revert.
  txn::TxParams buy;
  buy.kind = txn::TxKind::kInvoke;
  buy.nonce = 1;
  buy.gas_limit = 200'000;
  buy.to = tix;
  buy.data = evm::encode_call("buy(uint256,uint256)", {U256{1}, U256{1}});
  const auto first =
      txn::make_tx_ptr(txn::make_signed(buy, net.senders[0], scheme()));
  net.client->submit(0, first);
  net.run_for(seconds(3));
  ASSERT_TRUE(net.client->committed_at.contains(first->hash));
  EXPECT_TRUE(net.client->executed_ok.at(first->hash));

  buy.nonce = 0;
  const auto second =
      txn::make_tx_ptr(txn::make_signed(buy, net.senders[1], scheme()));
  net.client->submit(1, second);
  net.run_for(seconds(3));
  ASSERT_TRUE(net.client->committed_at.contains(second->hash));
  EXPECT_FALSE(net.client->executed_ok.at(second->hash));  // reverted
}

TEST(SrbbContract, DappInvocationsExecuteThroughConsensus) {
  // Deploy the counter at genesis and drive increments through the full
  // consensus + EVM path.
  NetOptions opts;
  Net net{opts};
  // Rebuild with a contract at genesis is complex post-hoc; instead send a
  // deploy transaction followed by invokes.
  txn::TxParams deploy;
  deploy.kind = txn::TxKind::kDeploy;
  deploy.nonce = 0;
  deploy.gas_limit = 5'000'000;
  deploy.data = evm::counter_contract().deploy_code;
  const auto deploy_tx = txn::make_tx_ptr(
      txn::make_signed(deploy, net.senders[0], scheme()));

  net.sim.schedule_at(millis(10), [&] { net.client->submit(0, deploy_tx); });
  net.run_for(seconds(3));
  ASSERT_TRUE(net.client->committed_at.contains(deploy_tx->hash));

  // The deployed address derives deterministically from (sender, nonce 0).
  const Address counter =
      evm::create_address(net.senders[0].address(), 0);
  EXPECT_EQ(net.validators[0]->oracle().db().code(counter),
            evm::counter_contract().runtime_code);

  for (std::uint64_t nonce = 1; nonce <= 3; ++nonce) {
    txn::TxParams invoke;
    invoke.kind = txn::TxKind::kInvoke;
    invoke.nonce = nonce;
    invoke.gas_limit = 200'000;
    invoke.to = counter;
    invoke.data = evm::encode_call("increment()", {});
    const auto tx = txn::make_tx_ptr(
        txn::make_signed(invoke, net.senders[0], scheme()));
    net.client->submit(static_cast<sim::NodeId>(nonce % 4), tx);
  }
  net.run_for(seconds(6));

  // Counter == 3 at every replica (replicated execution).
  for (const auto& validator : net.validators) {
    EXPECT_EQ(validator->oracle().db().storage(counter, U256{0}.to_hash()),
              U256{3});
  }
}

}  // namespace
}  // namespace srbb::node
