#include "txn/block.hpp"

#include <gtest/gtest.h>

namespace srbb::txn {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

TxPtr tx_ptr(std::uint64_t sender, std::uint64_t nonce) {
  TxParams params;
  params.nonce = nonce;
  return make_tx_ptr(make_signed(params, scheme().make_identity(sender), scheme()));
}

Block sample_block(std::uint64_t proposer_id = 3) {
  const crypto::Identity proposer = scheme().make_identity(proposer_id);
  return make_block(5, proposer_id, 1234, Hash32{},
                    {tx_ptr(1, 0), tx_ptr(2, 0)}, proposer, scheme());
}

TEST(Block, CertificateVerifies) {
  const Block b = sample_block();
  EXPECT_TRUE(verify_block_certificate(b, scheme()));
}

TEST(Block, TamperedTxSetBreaksCertificate) {
  Block b = sample_block();
  b.txs.push_back(tx_ptr(9, 0));  // Byzantine proposer swaps in extra txs
  EXPECT_FALSE(verify_block_certificate(b, scheme()));
}

TEST(Block, TamperedRootBreaksCertificate) {
  Block b = sample_block();
  b.header.tx_root[0] ^= 1;
  EXPECT_FALSE(verify_block_certificate(b, scheme()));
}

TEST(Block, ForeignCertificateBreaks) {
  Block b = sample_block(3);
  // Swap in another validator's pubkey without re-signing.
  b.header.cert.proposer_pubkey = scheme().make_identity(4).public_key;
  EXPECT_FALSE(verify_block_certificate(b, scheme()));
}

TEST(Block, EmptyBlockCertificateStillVerifies) {
  const crypto::Identity proposer = scheme().make_identity(1);
  const Block b = make_block(0, 1, 0, Hash32{}, {}, proposer, scheme());
  EXPECT_TRUE(verify_block_certificate(b, scheme()));
}

TEST(Block, HashDependsOnContents) {
  const Block a = sample_block();
  Block b = sample_block();
  EXPECT_EQ(a.hash(), b.hash());
  b.header.index = 6;
  EXPECT_NE(a.hash(), b.hash());
  Block c = sample_block();
  c.header.tx_root[1] ^= 1;
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Block, WireSizeCountsTransactions) {
  const Block b = sample_block();
  std::size_t expected = 184;
  for (const auto& tx : b.txs) expected += tx->size;
  EXPECT_EQ(b.wire_size(), expected);
}

TEST(BlockCodec, RoundTripPreservesEverything) {
  const Block original = sample_block();
  const Bytes wire = encode_block(original);
  auto decoded = decode_block(wire);
  ASSERT_TRUE(decoded.is_ok()) << decoded.message();
  const Block& back = decoded.value();
  EXPECT_EQ(back.header.index, original.header.index);
  EXPECT_EQ(back.header.proposer, original.header.proposer);
  EXPECT_EQ(back.header.timestamp, original.header.timestamp);
  EXPECT_EQ(back.header.parent_hash, original.header.parent_hash);
  EXPECT_EQ(back.header.tx_root, original.header.tx_root);
  EXPECT_EQ(back.hash(), original.hash());
  ASSERT_EQ(back.txs.size(), original.txs.size());
  for (std::size_t i = 0; i < back.txs.size(); ++i) {
    EXPECT_EQ(back.txs[i]->hash, original.txs[i]->hash);
  }
  // The certificate still verifies after the round trip.
  EXPECT_TRUE(verify_block_certificate(back, scheme()));
}

TEST(BlockCodec, EmptyBlockRoundTrip) {
  const Block original =
      make_block(9, 2, 77, Hash32{}, {}, scheme().make_identity(2), scheme());
  auto decoded = decode_block(encode_block(original));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().txs.empty());
  EXPECT_TRUE(verify_block_certificate(decoded.value(), scheme()));
}

TEST(BlockCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_block(Bytes{0x01, 0x02}).is_ok());
  EXPECT_FALSE(decode_block(BytesView{}).is_ok());
}

TEST(BlockCodec, RejectsTruncated) {
  const Bytes wire = encode_block(sample_block());
  for (std::size_t cut : {1u, 10u, 50u}) {
    if (cut >= wire.size()) continue;
    const Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_block(prefix).is_ok()) << cut;
  }
}

TEST(BlockCodec, TamperedTxBodyFailsCertificate) {
  const Block original = sample_block();
  Bytes wire = encode_block(original);
  // Flip one byte in the tail (inside the tx list payload).
  wire[wire.size() - 3] ^= 0x01;
  auto decoded = decode_block(wire);
  if (decoded.is_ok()) {
    // If it still parses, the certificate must catch the change.
    EXPECT_FALSE(verify_block_certificate(decoded.value(), scheme()));
  }
}

TEST(BlockCodec, WireSizeEstimateIsClose) {
  const Block block = sample_block();
  const std::size_t actual = encode_block(block).size();
  const std::size_t estimate = block.wire_size();
  EXPECT_GT(estimate * 10, actual * 8);   // within ~25%
  EXPECT_LT(estimate * 10, actual * 12);
}

TEST(Block, TxRootMatchesMerkleOfHashes) {
  const Block b = sample_block();
  std::vector<Hash32> leaves;
  for (const auto& tx : b.txs) leaves.push_back(tx->hash);
  EXPECT_EQ(b.header.tx_root, crypto::merkle_root(leaves));
}

}  // namespace
}  // namespace srbb::txn
