// Unit and property tests for the observability substrate (DESIGN.md §8):
// counters/gauges/histograms + registry merge semantics, and the TraceSink's
// fingerprint / Chrome-JSON export invariants the golden-trace suite builds
// on. The histogram properties are the satellite contract of this layer:
// quantile error bounded by bucket width, commutative merges, and no
// overflow at u64 extremes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace srbb::obs {
namespace {

// --------------------------------------------------------------------------
// Counter / Gauge
// --------------------------------------------------------------------------

TEST(Counter, IncrementsAndMerges) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);
  Counter b;
  b.inc(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(Gauge, MergeKeepsMaximum) {
  Gauge a;
  a.set(5);
  a.add(-2);
  EXPECT_EQ(a.value(), 3);
  Gauge b;
  b.set(10);
  a.merge(b);
  EXPECT_EQ(a.value(), 10);
  b.set(-1);
  a.merge(b);  // lower level does not win
  EXPECT_EQ(a.value(), 10);
}

// --------------------------------------------------------------------------
// Histogram properties
// --------------------------------------------------------------------------

TEST(HistogramBounds, ExponentialIsStrictlyAscending) {
  const HistogramBounds bounds = HistogramBounds::exponential(1000, 2.0, 40);
  ASSERT_FALSE(bounds.edges.empty());
  for (std::size_t i = 1; i < bounds.edges.size(); ++i) {
    EXPECT_LT(bounds.edges[i - 1], bounds.edges[i]);
  }
  EXPECT_EQ(bounds.edges.front(), 1000u);
}

TEST(HistogramBounds, ExponentialStopsBeforeU64Overflow) {
  // 1ns doubling for 80 buckets would pass 2^64; the builder must truncate
  // instead of wrapping into a non-ascending (or zero) edge.
  const HistogramBounds bounds = HistogramBounds::exponential(1, 2.0, 80);
  for (std::size_t i = 1; i < bounds.edges.size(); ++i) {
    EXPECT_LT(bounds.edges[i - 1], bounds.edges[i]);
  }
  EXPECT_LT(bounds.edges.size(), 80u);
}

// Property: for any quantile q, the reported value is the upper edge of the
// bucket containing the rank-q observation — so the true quantile is <= the
// report and > the previous edge (bucket-width bounded error).
TEST(Histogram, QuantileBoundedByBucketWidth) {
  const HistogramBounds bounds = HistogramBounds::exponential(1, 2.0, 20);
  Histogram hist{bounds};
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 1000; ++v) values.push_back(v * 37 % 1021);
  for (const std::uint64_t v : values) hist.observe(v);
  std::sort(values.begin(), values.end());

  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, q * static_cast<double>(values.size())));
    const std::uint64_t truth = values[rank - 1];
    const std::uint64_t reported = hist.quantile(q);
    EXPECT_GE(reported, truth) << "q=" << q;
    // The report is an edge; the true value must lie within that bucket.
    const auto it = std::lower_bound(bounds.edges.begin(), bounds.edges.end(),
                                     truth);
    if (it != bounds.edges.end()) {
      EXPECT_LE(reported, *it) << "q=" << q;
    }
  }
}

TEST(Histogram, MergeIsCommutative) {
  const HistogramBounds bounds = HistogramBounds::sim_latency();
  Histogram a{bounds};
  Histogram b{bounds};
  for (std::uint64_t v = 0; v < 500; ++v) a.observe(v * 101);
  for (std::uint64_t v = 0; v < 300; ++v) b.observe(v * v * 977);

  Histogram ab{bounds};
  ab.merge(a);
  ab.merge(b);
  Histogram ba{bounds};
  ba.merge(b);
  ba.merge(a);

  const HistogramSnapshot sab = ab.snapshot();
  const HistogramSnapshot sba = ba.snapshot();
  EXPECT_EQ(sab.counts, sba.counts);
  EXPECT_EQ(sab.count, sba.count);
  EXPECT_EQ(sab.min, sba.min);
  EXPECT_EQ(sab.max, sba.max);
  EXPECT_EQ(sab.mean, sba.mean);
  EXPECT_EQ(sab.p50, sba.p50);
  EXPECT_EQ(sab.p90, sba.p90);
  EXPECT_EQ(sab.p99, sba.p99);
}

TEST(Histogram, SurvivesU64Extremes) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  Histogram hist{HistogramBounds::sim_latency()};
  hist.observe(kMax);
  hist.observe(kMax);
  hist.observe(0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), kMax);
  // Two u64-max observations would wrap a 64-bit sum; the mean must still be
  // finite and ~2/3 of kMax.
  const double expected = static_cast<double>(kMax) * 2.0 / 3.0;
  EXPECT_NEAR(hist.mean() / expected, 1.0, 1e-9);
  // Overflow-bucket quantiles report the observed max, not an edge.
  EXPECT_EQ(hist.quantile(0.99), kMax);
}

TEST(Histogram, EmptyIsWellDefined) {
  Histogram hist{HistogramBounds::sim_latency()};
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
}

TEST(Histogram, SingleSampleEveryQuantileIsItsBucket) {
  Histogram hist{HistogramBounds::sim_latency()};
  hist.observe(12'345);
  const std::uint64_t p50 = hist.quantile(0.5);
  EXPECT_EQ(hist.quantile(0.01), p50);
  EXPECT_EQ(hist.quantile(0.99), p50);
  EXPECT_GE(p50, 12'345u);
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.counter("pool.admitted");
  Counter& b = registry.counter("pool.admitted");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = registry.histogram("lat.e2e");
  Histogram& h2 = registry.histogram("lat.e2e");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistry, FindDoesNotRegister) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
  EXPECT_EQ(registry.series_count(), 0u);
}

TEST(MetricsRegistry, MergeFromFoldsEverySeries) {
  MetricsRegistry a;
  a.counter("c").inc(1);
  a.gauge("g").set(5);
  a.histogram("h").observe(100);

  MetricsRegistry b;
  b.counter("c").inc(2);
  b.counter("only_b").inc(7);
  b.gauge("g").set(3);
  b.histogram("h").observe(200);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);  // registered by the merge
  EXPECT_EQ(a.gauge("g").value(), 5);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(MetricsRegistry, ToStringIsDeterministicAndSorted) {
  MetricsRegistry a;
  a.counter("zebra").inc(1);
  a.counter("alpha").inc(2);
  a.histogram("mid").observe(5);
  const std::string first = a.to_string();
  EXPECT_EQ(first, a.to_string());
  EXPECT_LT(first.find("alpha"), first.find("zebra"));
}

// --------------------------------------------------------------------------
// TraceSink
// --------------------------------------------------------------------------

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink{false};
  sink.emit(1, 0, 0, "pool", "pool.admit");
  EXPECT_EQ(sink.size(), 0u);
  sink.set_enabled(true);
  sink.emit(2, 0, 0, "pool", "pool.admit");
  EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSink, MacroToleratesNullSink) {
  TraceSink* null_sink = nullptr;
  SRBB_TRACE(null_sink, 1, 0, 0, "pool", "pool.admit");  // must not crash
  TraceSink sink;
  SRBB_TRACE(&sink, 7, 2, 3, "consensus", "consensus.decide", "index", 4);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].ts, 7u);
  EXPECT_EQ(sink.events()[0].dur, 2u);
  EXPECT_EQ(sink.events()[0].node, 3u);
  EXPECT_EQ(sink.events()[0].arg0, 4u);
}

TEST(TraceSink, CountsByNameAndCategory) {
  TraceSink sink;
  sink.emit(1, 0, 0, "pool", "pool.admit");
  sink.emit(2, 0, 0, "pool", "pool.admit");
  sink.emit(3, 0, 0, "pool", "pool.drop_full");
  sink.emit(4, 0, 1, "commit", "superblock.commit");
  EXPECT_EQ(sink.count_of("pool.admit"), 2u);
  EXPECT_EQ(sink.count_of("superblock.commit"), 1u);
  EXPECT_EQ(sink.count_of("missing"), 0u);
  EXPECT_EQ(sink.count_of_category("pool"), 3u);
  const auto counts = sink.event_counts();
  EXPECT_EQ(counts.at("pool.admit"), 2u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(TraceSink, FingerprintHashesContentsNotPointers) {
  // Two sinks fed byte-identical events through distinct string objects must
  // fingerprint identically (the contract that makes goldens survive ASLR).
  const std::string name_a = std::string("pool.") + "admit";
  const std::string name_b = std::string("pool.ad") + "mit";
  ASSERT_NE(name_a.data(), name_b.data());
  TraceSink a;
  a.emit(5, 1, 2, "pool", name_a.c_str(), "tx", 9);
  TraceSink b;
  b.emit(5, 1, 2, "pool", name_b.c_str(), "tx", 9);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Any field change must move the fingerprint.
  TraceSink c;
  c.emit(5, 1, 2, "pool", "pool.admit", "tx", 10);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  TraceSink d;
  d.emit(6, 1, 2, "pool", "pool.admit", "tx", 9);
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(TraceSink, ChromeJsonIsDeterministicIntegerMicros) {
  TraceSink sink;
  sink.emit(1'500, 250, 0, "pool", "pool.admit", "tx", 1);
  sink.emit(2'000'000, 0, 3, "commit", "superblock.commit", "index", 0,
            "valid", 2);
  const std::string json = sink.chrome_json();
  EXPECT_EQ(json, sink.chrome_json());  // byte-identical re-export
  // ns -> µs with integer math: 1500ns = 1.500µs, 250ns dur = 0.250µs.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"valid\":2"), std::string::npos);
}

TEST(TraceSink, TraceIdIsLittleEndianPrefix) {
  Hash32 hash;
  for (std::size_t i = 0; i < hash.size(); ++i) {
    hash[i] = static_cast<std::uint8_t>(i + 1);
  }
  EXPECT_EQ(trace_id(hash), 0x0807060504030201ull);
}

}  // namespace
}  // namespace srbb::obs
