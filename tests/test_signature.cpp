#include "crypto/signature.hpp"

#include <gtest/gtest.h>

#include <string>

#include "crypto/batch.hpp"

namespace srbb::crypto {
namespace {

BytesView sv(const std::string& s) {
  return BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

class SchemeTest : public ::testing::TestWithParam<const SignatureScheme*> {};

TEST_P(SchemeTest, RoundTrip) {
  const SignatureScheme& scheme = *GetParam();
  const Identity id = scheme.make_identity(7);
  const Signature sig = scheme.sign(id, sv("hello srbb"));
  EXPECT_TRUE(scheme.verify(sv("hello srbb"), sig, id.public_key));
}

TEST_P(SchemeTest, TamperFails) {
  const SignatureScheme& scheme = *GetParam();
  const Identity id = scheme.make_identity(8);
  const Signature sig = scheme.sign(id, sv("payload"));
  EXPECT_FALSE(scheme.verify(sv("payloae"), sig, id.public_key));
}

TEST_P(SchemeTest, WrongKeyFails) {
  const SignatureScheme& scheme = *GetParam();
  const Identity a = scheme.make_identity(9);
  const Identity b = scheme.make_identity(10);
  const Signature sig = scheme.sign(a, sv("m"));
  EXPECT_FALSE(scheme.verify(sv("m"), sig, b.public_key));
}

TEST_P(SchemeTest, IdentitiesAreDeterministic) {
  const SignatureScheme& scheme = *GetParam();
  EXPECT_EQ(scheme.make_identity(3).public_key,
            scheme.make_identity(3).public_key);
  EXPECT_NE(scheme.make_identity(3).public_key,
            scheme.make_identity(4).public_key);
}

TEST_P(SchemeTest, AddressStableAndDistinct) {
  const SignatureScheme& scheme = *GetParam();
  const Identity a = scheme.make_identity(1);
  const Identity b = scheme.make_identity(2);
  EXPECT_EQ(a.address(), scheme.make_identity(1).address());
  EXPECT_NE(a.address(), b.address());
  EXPECT_FALSE(a.address().is_zero());
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeTest,
                         ::testing::Values(&SignatureScheme::ed25519(),
                                           &SignatureScheme::fast_sim()),
                         [](const auto& info) {
                           return std::string(info.param->name()) == "ed25519"
                                      ? "Ed25519"
                                      : "FastSim";
                         });

TEST(SchemeNames, AreDistinct) {
  EXPECT_STRNE(SignatureScheme::ed25519().name(),
               SignatureScheme::fast_sim().name());
}

TEST(BatchVerify, MatchesSequentialAndFlagsBadItems) {
  const auto& scheme = SignatureScheme::ed25519();
  ThreadPool pool{4};
  std::vector<Bytes> messages;  // items hold views; the buffers live here
  messages.reserve(40);
  std::vector<BatchVerifyItem> items;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const Identity id = scheme.make_identity(i);
    messages.push_back(Bytes{static_cast<std::uint8_t>(i)});
    BatchVerifyItem item;
    item.message = BytesView{messages.back()};
    item.signature = scheme.sign(id, item.message);
    item.public_key = id.public_key;
    if (i % 7 == 3) item.signature[2] ^= 1;  // corrupt some
    items.push_back(item);
  }
  const auto parallel = batch_verify(scheme, items, pool);
  const auto sequential = batch_verify_sequential(scheme, items);
  ASSERT_EQ(parallel.size(), items.size());
  EXPECT_EQ(parallel, sequential);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(parallel[i], i % 7 != 3) << i;
  }
}

TEST(BatchVerify, EmptyBatch) {
  ThreadPool pool{2};
  EXPECT_TRUE(batch_verify(SignatureScheme::fast_sim(), {}, pool).empty());
}

TEST(FastSim, NotInteroperableWithEd25519) {
  const Identity id = SignatureScheme::fast_sim().make_identity(5);
  const Signature sig = SignatureScheme::fast_sim().sign(id, sv("x"));
  EXPECT_FALSE(SignatureScheme::ed25519().verify(sv("x"), sig, id.public_key));
}

}  // namespace
}  // namespace srbb::crypto
