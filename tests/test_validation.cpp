// Tests for the paper's eager/lazy validation split (§II-B) and the
// execute(t) semantics of Alg. 1 lines 32-40.
#include "txn/validation.hpp"

#include <gtest/gtest.h>

#include "evm/contracts.hpp"
#include "txn/executor.hpp"

namespace srbb::txn {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

struct World {
  state::StateDB db;
  evm::BlockContext block;
  ValidationConfig vcfg;
  crypto::Identity alice = scheme().make_identity(1);
  crypto::Identity bob = scheme().make_identity(2);

  World() {
    db.add_balance(alice.address(), U256{10'000'000});
    db.add_balance(bob.address(), U256{10'000'000});
    block.coinbase = scheme().make_identity(99).address();
  }

  Transaction transfer(const crypto::Identity& from, const Address& to,
                       std::uint64_t value, std::uint64_t nonce) {
    TxParams params;
    params.nonce = nonce;
    params.to = to;
    params.value = U256{value};
    params.gas_limit = 30'000;
    params.gas_price = U256{1};
    return make_signed(params, from, scheme());
  }
};

TEST(EagerValidation, AcceptsWellFormed) {
  World w;
  const Transaction tx = w.transfer(w.alice, w.bob.address(), 100, 0);
  EXPECT_TRUE(eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(EagerValidation, RejectsBadSignature) {
  World w;
  Transaction tx = w.transfer(w.alice, w.bob.address(), 100, 0);
  tx.signature[5] ^= 1;
  const Status s = eager_validate(tx, w.db, scheme(), w.vcfg);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("signature"), std::string::npos);
}

TEST(EagerValidation, RejectsOversized) {
  World w;
  TxParams params;
  params.data = Bytes(w.vcfg.max_tx_size + 1, 0xaa);
  params.gas_limit = 10'000'000;
  const Transaction tx = make_signed(params, w.alice, scheme());
  const Status s = eager_validate(tx, w.db, scheme(), w.vcfg);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("size"), std::string::npos);
}

TEST(EagerValidation, RejectsStaleNonce) {
  World w;
  w.db.set_nonce(w.alice.address(), 5);
  const Transaction tx = w.transfer(w.alice, w.bob.address(), 100, 4);
  EXPECT_FALSE(eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(EagerValidation, AcceptsFutureNonceInWindow) {
  World w;
  const Transaction tx = w.transfer(w.alice, w.bob.address(), 100, 10);
  EXPECT_TRUE(eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(EagerValidation, RejectsNonceBeyondWindow) {
  World w;
  const Transaction tx =
      w.transfer(w.alice, w.bob.address(), 100, w.vcfg.nonce_window + 1);
  EXPECT_FALSE(eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(EagerValidation, RejectsInsufficientBalance) {
  World w;
  // The flooding-attack construction from §V-B: sender balance is zero.
  const Transaction tx = w.transfer(scheme().make_identity(77),
                                    w.bob.address(), 100, 0);
  const Status s = eager_validate(tx, w.db, scheme(), w.vcfg);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("balance"), std::string::npos);
}

TEST(EagerValidation, RejectsGasBelowIntrinsic) {
  World w;
  TxParams params;
  params.gas_limit = 20'000;  // below the 21000 floor
  params.to = w.bob.address();
  const Transaction tx = make_signed(params, w.alice, scheme());
  EXPECT_FALSE(eager_validate(tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(LazyValidation, RequiresExactNonce) {
  World w;
  EXPECT_TRUE(
      lazy_validate(w.transfer(w.alice, w.bob.address(), 1, 0), w.db).is_ok());
  EXPECT_FALSE(
      lazy_validate(w.transfer(w.alice, w.bob.address(), 1, 1), w.db).is_ok());
  w.db.set_nonce(w.alice.address(), 3);
  EXPECT_TRUE(
      lazy_validate(w.transfer(w.alice, w.bob.address(), 1, 3), w.db).is_ok());
  EXPECT_FALSE(
      lazy_validate(w.transfer(w.alice, w.bob.address(), 1, 2), w.db).is_ok());
}

TEST(LazyValidation, DoesNotCheckSignature) {
  World w;
  Transaction tx = w.transfer(w.alice, w.bob.address(), 100, 0);
  tx.signature[0] ^= 0xff;  // lazy validation is weaker than eager (§II-B)
  EXPECT_TRUE(lazy_validate(tx, w.db).is_ok());
}

TEST(EagerValidation, SizeBoundaryIsInclusive) {
  World w;
  // Find a data size whose wire encoding lands exactly at the limit: build
  // one tx, measure overhead, then construct at/over the boundary.
  // Probe with data large enough that the RLP length headers have the same
  // width as at the limit (both > 65535 bytes -> 3-byte lengths).
  TxParams probe;
  probe.gas_limit = 10'000'000;
  probe.data = Bytes(100'000, 0xaa);
  const std::size_t overhead =
      make_signed(probe, w.alice, scheme()).wire_size() - 100'000;
  TxParams at_limit;
  at_limit.gas_limit = 10'000'000;
  at_limit.data = Bytes(w.vcfg.max_tx_size - overhead, 0xaa);
  const Transaction ok_tx = make_signed(at_limit, w.alice, scheme());
  ASSERT_EQ(ok_tx.wire_size(), w.vcfg.max_tx_size);
  EXPECT_TRUE(eager_validate(ok_tx, w.db, scheme(), w.vcfg).is_ok());

  at_limit.data.push_back(0xaa);
  const Transaction big_tx = make_signed(at_limit, w.alice, scheme());
  EXPECT_FALSE(eager_validate(big_tx, w.db, scheme(), w.vcfg).is_ok());
}

TEST(EagerValidation, BalanceMustCoverGasPlusValueExactly) {
  World w;
  // Give a fresh account exactly gas*price + value.
  const crypto::Identity tight = scheme().make_identity(71);
  w.db.add_balance(tight.address(), U256{21'000 * 2 + 500});
  TxParams params;
  params.gas_limit = 21'000;
  params.gas_price = U256{2};
  params.to = w.bob.address();
  params.value = U256{500};
  const Transaction exact = make_signed(params, tight, scheme());
  EXPECT_TRUE(eager_validate(exact, w.db, scheme(), w.vcfg).is_ok());
  params.value = U256{501};
  const Transaction over = make_signed(params, tight, scheme());
  EXPECT_FALSE(eager_validate(over, w.db, scheme(), w.vcfg).is_ok());
}

TEST(IntrinsicGas, CountsDataBytes) {
  World w;
  TxParams params;
  params.data = Bytes{0x00, 0x00, 0x01, 0x02};
  const Transaction tx = make_signed(params, w.alice, scheme());
  EXPECT_EQ(intrinsic_gas(tx), 21'000u + 2 * 4 + 2 * 16);
}

TEST(IntrinsicGas, DeploySurcharge) {
  World w;
  TxParams params;
  params.kind = TxKind::kDeploy;
  const Transaction tx = make_signed(params, w.alice, scheme());
  EXPECT_EQ(intrinsic_gas(tx), 21'000u + 32'000u);
}

// --- execution ---

TEST(Executor, TransferMovesValueAndChargesGas) {
  World w;
  const U256 alice_before = w.db.balance(w.alice.address());
  const Transaction tx = w.transfer(w.alice, w.bob.address(), 1000, 0);
  ExecutionConfig cfg;
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  ASSERT_TRUE(receipt.is_ok()) << receipt.message();
  EXPECT_TRUE(receipt.value().success);
  EXPECT_EQ(receipt.value().gas_used, 21'000u);
  EXPECT_EQ(w.db.balance(w.bob.address()), U256{10'001'000});
  EXPECT_EQ(w.db.balance(w.alice.address()),
            alice_before - U256{1000} - U256{21'000});
  EXPECT_EQ(w.db.nonce(w.alice.address()), 1u);
  // Coinbase earned the fee.
  EXPECT_EQ(w.db.balance(w.block.coinbase), U256{21'000});
}

TEST(Executor, InvalidSignatureIsExecutionError) {
  World w;
  Transaction tx = w.transfer(w.alice, w.bob.address(), 1000, 0);
  tx.signature[3] ^= 1;
  ExecutionConfig cfg;
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  EXPECT_FALSE(receipt.is_ok());
  EXPECT_NE(receipt.message().find("ErrInvalidSig"), std::string::npos);
  // No state transition for invalid transactions.
  EXPECT_EQ(w.db.nonce(w.alice.address()), 0u);
  EXPECT_EQ(w.db.balance(w.bob.address()), U256{10'000'000});
}

TEST(Executor, WrongNonceIsInvalidNoTransition) {
  World w;
  const Transaction tx = w.transfer(w.alice, w.bob.address(), 1000, 5);
  ExecutionConfig cfg;
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  EXPECT_FALSE(receipt.is_ok());
  EXPECT_EQ(w.db.balance(w.bob.address()), U256{10'000'000});
}

TEST(Executor, ZeroBalanceSenderIsInvalid) {
  World w;
  const Transaction tx =
      w.transfer(scheme().make_identity(55), w.bob.address(), 1, 0);
  ExecutionConfig cfg;
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  EXPECT_FALSE(receipt.is_ok());
}

TEST(Executor, DeployInvokeEndToEnd) {
  World w;
  // Deploy the counter.
  TxParams deploy;
  deploy.kind = TxKind::kDeploy;
  deploy.nonce = 0;
  deploy.gas_limit = 5'000'000;
  deploy.data = evm::counter_contract().deploy_code;
  const Transaction dtx = make_signed(deploy, w.alice, scheme());
  ExecutionConfig cfg;
  auto dreceipt = apply_transaction(dtx, w.db, w.block, cfg);
  ASSERT_TRUE(dreceipt.is_ok()) << dreceipt.message();
  ASSERT_TRUE(dreceipt.value().success);
  const Address counter = dreceipt.value().contract_address;
  EXPECT_FALSE(counter.is_zero());
  EXPECT_EQ(w.db.code(counter), evm::counter_contract().runtime_code);

  // Invoke increment twice.
  for (std::uint64_t n = 1; n <= 2; ++n) {
    TxParams invoke;
    invoke.kind = TxKind::kInvoke;
    invoke.nonce = n;
    invoke.gas_limit = 200'000;
    invoke.to = counter;
    invoke.data = evm::encode_call("increment()", {});
    const Transaction itx = make_signed(invoke, w.alice, scheme());
    auto ireceipt = apply_transaction(itx, w.db, w.block, cfg);
    ASSERT_TRUE(ireceipt.is_ok());
    EXPECT_TRUE(ireceipt.value().success);
  }
  EXPECT_EQ(w.db.storage(counter, U256{0}.to_hash()), U256{2});
}

TEST(Executor, RevertedInvokeStillConsumesGasAndNonce) {
  World w;
  TxParams deploy;
  deploy.kind = TxKind::kDeploy;
  deploy.gas_limit = 5'000'000;
  deploy.data = evm::ticketing_contract().deploy_code;
  const Transaction dtx = make_signed(deploy, w.alice, scheme());
  ExecutionConfig cfg;
  auto dreceipt = apply_transaction(dtx, w.db, w.block, cfg);
  ASSERT_TRUE(dreceipt.is_ok());
  const Address tix = dreceipt.value().contract_address;

  // Alice buys seat (1,1); Bob tries the same seat -> revert.
  TxParams buy;
  buy.kind = TxKind::kInvoke;
  buy.nonce = 1;
  buy.gas_limit = 200'000;
  buy.to = tix;
  buy.data = evm::encode_call("buy(uint256,uint256)", {U256{1}, U256{1}});
  ASSERT_TRUE(apply_transaction(make_signed(buy, w.alice, scheme()), w.db,
                                w.block, cfg)
                  .is_ok());
  buy.nonce = 0;
  auto bob_receipt = apply_transaction(make_signed(buy, w.bob, scheme()), w.db,
                                       w.block, cfg);
  ASSERT_TRUE(bob_receipt.is_ok());  // valid transaction...
  EXPECT_FALSE(bob_receipt.value().success);  // ...that reverted
  EXPECT_GT(bob_receipt.value().gas_used, 21'000u);
  EXPECT_EQ(w.db.nonce(w.bob.address()), 1u);  // nonce still consumed
}

TEST(Executor, SkipSignatureCheckWhenPreValidated) {
  World w;
  Transaction tx = w.transfer(w.alice, w.bob.address(), 10, 0);
  tx.signature[0] ^= 1;
  ExecutionConfig cfg;
  cfg.verify_signature = false;  // models a node that eagerly validated
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  EXPECT_TRUE(receipt.is_ok());
}

TEST(Executor, GasRefundForUnusedGas) {
  World w;
  TxParams params;
  params.nonce = 0;
  params.to = w.bob.address();
  params.value = U256{1};
  params.gas_limit = 500'000;  // way more than needed
  params.gas_price = U256{2};
  const Transaction tx = make_signed(params, w.alice, scheme());
  const U256 before = w.db.balance(w.alice.address());
  ExecutionConfig cfg;
  auto receipt = apply_transaction(tx, w.db, w.block, cfg);
  ASSERT_TRUE(receipt.is_ok());
  // Charged only for gas_used at gas_price 2, not the full limit.
  EXPECT_EQ(w.db.balance(w.alice.address()),
            before - U256{1} - U256{2 * 21'000});
}

}  // namespace
}  // namespace srbb::txn
