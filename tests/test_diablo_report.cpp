// Edge-case tests for the DIABLO reduction and report formatting: empty
// commit windows, single-sample percentiles, and the zero-duration
// observation-window guard must all produce finite, well-defined numbers —
// a figure script dividing by zero would poison every downstream plot.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "diablo/report.hpp"
#include "diablo/runner.hpp"
#include "diablo/workload.hpp"
#include "obs/metrics.hpp"

namespace srbb::diablo {
namespace {

RunConfig tiny_config() {
  RunConfig config;
  config.kind = SystemKind::kSrbb;
  config.validators = 4;
  config.clients = 1;
  config.seed = 9;
  config.min_block_interval = millis(200);
  config.proposal_timeout = millis(500);
  config.drain = seconds(10);
  return config;
}

void expect_all_finite(const RunResult& r) {
  for (const double v :
       {r.commit_pct, r.throughput_tps, r.avg_latency_s, r.p50_latency_s,
        r.p95_latency_s, r.max_latency_s,
        r.valid_committed_per_validator_tps}) {
    EXPECT_TRUE(std::isfinite(v)) << format_row(r);
  }
}

TEST(DiabloReport, EmptyCommitWindowIsAllZeroesNotNaN) {
  RunConfig config = tiny_config();
  config.workload = WorkloadSpec::constant("empty", 0, 2);  // no sends at all
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.sent, 0u);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.commit_pct, 0.0);
  EXPECT_EQ(result.throughput_tps, 0.0);
  EXPECT_EQ(result.avg_latency_s, 0.0);
  expect_all_finite(result);
  const std::string row = format_row(result);
  EXPECT_EQ(row.find("nan"), std::string::npos) << row;
  EXPECT_EQ(row.find("inf"), std::string::npos) << row;
}

TEST(DiabloReport, ZeroDurationRunDoesNotDivideByZero) {
  // Empty workload and no drain: the observation window is zero simulated
  // seconds. Per-validator TPS must report 0, not inf (regression test for
  // the guarded division in the reducer).
  RunConfig config = tiny_config();
  config.workload = WorkloadSpec::constant("zero", 0, 0);
  config.drain = 0;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.valid_committed_per_validator_tps, 0.0);
  expect_all_finite(result);
}

TEST(DiabloReport, SingleSamplePercentilesCollapseToTheSample) {
  RunConfig config = tiny_config();
  config.workload = WorkloadSpec::constant("one", 1, 1);  // exactly one tx
  const RunResult result = run_experiment(config);
  ASSERT_EQ(result.sent, 1u);
  ASSERT_EQ(result.committed, 1u);
  EXPECT_GT(result.avg_latency_s, 0.0);
  // With one latency sample every percentile is that sample.
  EXPECT_EQ(result.p50_latency_s, result.avg_latency_s);
  EXPECT_EQ(result.p95_latency_s, result.avg_latency_s);
  EXPECT_EQ(result.max_latency_s, result.avg_latency_s);
  EXPECT_EQ(result.commit_pct, 100.0);
  // The per-phase e2e histogram carries the same single sample.
  EXPECT_EQ(result.e2e_commit.count, 1u);
  EXPECT_EQ(result.e2e_commit.min, result.e2e_commit.max);
}

TEST(DiabloReport, PhaseHistogramsSkipEmptyPhases) {
  RunResult result;
  EXPECT_EQ(format_phase_histograms(result), "");

  obs::Histogram hist{obs::HistogramBounds::sim_latency()};
  hist.observe(millis(3));
  result.e2e_commit = hist.snapshot();
  const std::string out = format_phase_histograms(result);
  EXPECT_NE(out.find("e2e-commit"), std::string::npos) << out;
  EXPECT_EQ(out.find("pool-wait"), std::string::npos) << out;
  EXPECT_EQ(out.find('\n'), std::string::npos) << "one phase -> one line";
}

TEST(DiabloReport, PhaseHistogramsListEveryNonEmptyPhase) {
  RunConfig config = tiny_config();
  config.workload = WorkloadSpec::constant("few", 20, 2);
  const RunResult result = run_experiment(config);
  ASSERT_GT(result.committed, 0u);
  const std::string out = format_phase_histograms(result);
  for (const char* phase :
       {"pool-wait", "propose->decide", "decide->commit", "e2e-commit"}) {
    EXPECT_NE(out.find(phase), std::string::npos) << out;
  }
}

TEST(DiabloReport, TableFormattingIsStable) {
  RunResult a;
  a.system = "SRBB";
  a.workload = "t";
  a.throughput_tps = 123.456;
  a.commit_pct = 99.9;
  const std::string table = format_table({a});
  EXPECT_NE(table.find("SRBB"), std::string::npos);
  EXPECT_NE(table.find("123.46"), std::string::npos);
  EXPECT_EQ(table, format_table({a}));
}

}  // namespace
}  // namespace srbb::diablo
