// Soundness tests for the static rw-set pass and its schedule-time
// resolution (docs/ANALYSIS.md §rw-sets). The contract under test:
//
//     predicted ⊇ observed   or   prediction is ⊤ (top == true)
//
// for every transaction — checked here differentially against the
// OverlayState observed access sets for every shipped DIABLO contract, plus
// exact reconciliation of the analysis.rwset.{hit,miss,violation} counters
// the parallel executor publishes.
#include "txn/rwset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/keccak.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/contracts.hpp"
#include "obs/metrics.hpp"
#include "state/overlay.hpp"
#include "txn/parallel_executor.hpp"

namespace srbb::txn {
namespace {

using evm::analysis::ResolveContext;
using evm::analysis::StorageSummary;
using evm::analysis::SymClass;
using evm::analysis::SymExpr;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

Address contract_addr(std::uint8_t tag) {
  Address a;
  a[0] = 0xC0;
  a[19] = tag;
  return a;
}

const Address kCounter = contract_addr(1);
const Address kExchange = contract_addr(2);
const Address kMobility = contract_addr(3);
const Address kTicketing = contract_addr(4);
const Address kStaking = contract_addr(5);
const Address kToken = contract_addr(6);
const Address kKvStore = contract_addr(7);

state::StateDB make_state(std::size_t senders) {
  state::StateDB db;
  for (std::size_t i = 0; i < senders; ++i) {
    db.add_balance(scheme().make_identity(i).address(), U256{1'000'000'000});
  }
  auto deploy = [&db](const Address& at, const evm::Contract& contract) {
    db.create_account(at);
    db.set_nonce(at, 1);
    db.set_code(at, contract.runtime_code);
  };
  deploy(kCounter, evm::counter_contract());
  deploy(kExchange, evm::exchange_contract());
  deploy(kMobility, evm::mobility_contract());
  deploy(kTicketing, evm::ticketing_contract());
  deploy(kStaking, evm::staking_contract());
  deploy(kToken, evm::token_contract());
  deploy(kKvStore, evm::kvstore_contract());
  db.commit();
  return db;
}

Transaction signed_tx(std::uint64_t sender, TxParams params) {
  return make_signed(params, scheme().make_identity(sender), scheme());
}

Transaction invoke(std::uint64_t sender, std::uint64_t nonce,
                   const Address& contract, Bytes calldata,
                   std::uint64_t value = 0) {
  TxParams params;
  params.kind = TxKind::kInvoke;
  params.nonce = nonce;
  params.gas_limit = 300'000;
  params.to = contract;
  params.value = U256{value};
  params.data = std::move(calldata);
  return signed_tx(sender, params);
}

Transaction transfer(std::uint64_t sender, std::uint64_t nonce,
                     const Address& to, std::uint64_t value = 7) {
  TxParams params;
  params.nonce = nonce;
  params.gas_limit = 30'000;
  params.to = to;
  params.value = U256{value};
  return signed_tx(sender, params);
}

SymExpr map_key(SymExpr word, std::uint64_t tag) {
  SymExpr e;
  e.cls = SymClass::kKeccak;
  e.children.push_back(std::move(word));
  e.children.push_back(SymExpr::make_const(U256{tag}));
  return e;
}

bool contains_expr(const std::vector<SymExpr>& exprs, const SymExpr& e) {
  for (const SymExpr& x : exprs) {
    if (x == e) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Symbolic-key resolution must match the interpreter bit for bit.

TEST(SymExprResolve, ConstAndLeaves) {
  ResolveContext ctx;
  Address caller;
  caller[3] = 0xAB;
  Address self;
  self[19] = 0x07;
  ctx.caller = caller;
  ctx.self = self;
  ctx.callvalue = U256{12345};

  EXPECT_EQ(resolve(SymExpr::make_const(U256{42}), ctx), U256{42});
  EXPECT_EQ(resolve(SymExpr::make_leaf(SymClass::kCallvalue), ctx),
            U256{12345});
  // Address leaves resolve as zero-extended 32-byte words: the low 20 bytes
  // of the word are the address, exactly as the CALLER opcode pushes it.
  const U256 caller_word = *resolve(SymExpr::make_leaf(SymClass::kCaller), ctx);
  const U256 origin_word = *resolve(SymExpr::make_leaf(SymClass::kOrigin), ctx);
  const U256 self_word = *resolve(SymExpr::make_leaf(SymClass::kSelf), ctx);
  EXPECT_EQ(caller_word, origin_word);  // top frame: ORIGIN == CALLER
  Hash32 expect_caller;
  std::copy(caller.data.begin(), caller.data.end(),
            expect_caller.data.begin() + 12);
  EXPECT_EQ(caller_word.to_hash(), expect_caller);
  Hash32 expect_self;
  std::copy(self.data.begin(), self.data.end(), expect_self.data.begin() + 12);
  EXPECT_EQ(self_word.to_hash(), expect_self);
}

TEST(SymExprResolve, CalldataUsesZeroPaddedSliceSemantics) {
  const Bytes data{0xde, 0xad, 0xbe, 0xef};
  ResolveContext ctx;
  ctx.calldata = BytesView{data};

  // CALLDATALOAD(0) over 4 bytes of calldata: the word is the 4 bytes
  // followed by 28 zero bytes (interpreter padded_slice semantics).
  Bytes word(32, 0);
  word[0] = 0xde;
  word[1] = 0xad;
  word[2] = 0xbe;
  word[3] = 0xef;
  EXPECT_EQ(resolve(SymExpr::make_calldata(0), ctx)->to_hash(),
            Hash32{BytesView{word}});
  // Entirely past the end: all zeros.
  EXPECT_EQ(resolve(SymExpr::make_calldata(1000), ctx), U256{0});
}

TEST(SymExprResolve, KeccakMatchesSha3OverMemoryLayout) {
  // The mapping idiom: mem[0] = calldata[4], mem[32] = tag, SHA3(0, 64).
  Bytes data(36, 0);
  data[35] = 9;  // arg 0 == 9
  ResolveContext ctx;
  ctx.calldata = BytesView{data};

  const SymExpr key = map_key(SymExpr::make_calldata(4), 1);
  Bytes preimage;
  append(preimage, U256{9}.be_bytes());
  append(preimage, U256{1}.be_bytes());
  EXPECT_EQ(resolve(key, ctx)->to_hash(),
            crypto::Keccak256::hash(BytesView{preimage}));
}

TEST(SymExprResolve, UnknownPoisonsTheTree) {
  ResolveContext ctx;
  EXPECT_FALSE(SymExpr::unknown().resolvable());
  EXPECT_EQ(resolve(SymExpr::unknown(), ctx), std::nullopt);
  const SymExpr poisoned = map_key(SymExpr::unknown(), 0);
  EXPECT_FALSE(poisoned.resolvable());
  EXPECT_EQ(resolve(poisoned, ctx), std::nullopt);
}

// ---------------------------------------------------------------------------
// Every shipped DIABLO contract must get a usable (non-⊤) summary whose
// symbolic keys match the contract's storage idiom.

TEST(StorageSummaryShapes, ShippedContractsAreAllPrecise) {
  const std::pair<const char*, const evm::Contract*> contracts[] = {
      {"counter", &evm::counter_contract()},
      {"exchange", &evm::exchange_contract()},
      {"mobility", &evm::mobility_contract()},
      {"ticketing", &evm::ticketing_contract()},
      {"staking", &evm::staking_contract()},
      {"token", &evm::token_contract()},
      {"kvstore", &evm::kvstore_contract()},
  };
  for (const auto& [name, contract] : contracts) {
    const evm::analysis::AnalysisResult r =
        evm::analysis::analyze(BytesView{contract->runtime_code});
    EXPECT_FALSE(r.storage.top) << name;
    EXPECT_FALSE(r.storage.budget_exhausted) << name;
    EXPECT_FALSE(r.storage.writes.empty()) << name;
    for (const SymExpr& e : r.storage.reads) {
      EXPECT_TRUE(e.resolvable()) << name << ": " << to_string(e);
    }
    for (const SymExpr& e : r.storage.writes) {
      EXPECT_TRUE(e.resolvable()) << name << ": " << to_string(e);
    }
  }
}

TEST(StorageSummaryShapes, CounterTouchesSlotZeroOnly) {
  const evm::analysis::AnalysisResult r =
      evm::analysis::analyze(BytesView{evm::counter_contract().runtime_code});
  ASSERT_EQ(r.storage.writes.size(), 1u);
  EXPECT_EQ(r.storage.writes[0], SymExpr::make_const(U256{0}));
  EXPECT_TRUE(contains_expr(r.storage.reads, SymExpr::make_const(U256{0})));
}

TEST(StorageSummaryShapes, KvStoreKeyIsKeccakOfCalldata) {
  const evm::analysis::AnalysisResult r =
      evm::analysis::analyze(BytesView{evm::kvstore_contract().runtime_code});
  const SymExpr key = map_key(SymExpr::make_calldata(4), 0);
  ASSERT_EQ(r.storage.writes.size(), 1u);
  EXPECT_EQ(r.storage.writes[0], key) << to_string(r.storage.writes[0]);
  EXPECT_TRUE(contains_expr(r.storage.reads, key));
  // No global stats slot: the whole point of the kvstore workload.
  EXPECT_FALSE(contains_expr(r.storage.writes, SymExpr::make_const(U256{0})));
}

TEST(StorageSummaryShapes, StakingMixesCallerAndCalldataKeys) {
  const evm::analysis::AnalysisResult r =
      evm::analysis::analyze(BytesView{evm::staking_contract().runtime_code});
  const SymExpr caller_key = map_key(SymExpr::make_leaf(SymClass::kCaller), 0);
  EXPECT_TRUE(contains_expr(r.storage.writes, caller_key));
  EXPECT_TRUE(contains_expr(r.storage.writes, SymExpr::make_const(U256{0})));
  EXPECT_TRUE(
      contains_expr(r.storage.reads, map_key(SymExpr::make_calldata(4), 0)));
}

// ---------------------------------------------------------------------------
// The soundness differential: for every transaction against every shipped
// contract, the schedule-time prediction must cover what the execution
// actually touched (or be ⊤). Runs the full battery sequentially so later
// transactions see the state the earlier ones produced.

struct SoundnessCase {
  Transaction tx;
  bool expect_hint;  // non-⊤ prediction expected
};

void run_soundness(const std::vector<SoundnessCase>& cases,
                   const evm::BlockContext& block) {
  state::StateDB db = make_state(16);
  evm::analysis::AnalysisCache cache;
  ExecutionConfig config;
  config.scheme = &scheme();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Transaction& tx = cases[i].tx;
    const PredictedRwSet pred = predict_rwset(tx, db, block, cache);
    EXPECT_EQ(!pred.top, cases[i].expect_hint) << "tx " << i;
    state::OverlayState overlay{db};
    const Result<Receipt> res = apply_transaction(tx, overlay, block, config);
    if (!pred.top) {
      EXPECT_TRUE(
          pred.covers(overlay.observed_reads(), overlay.observed_writes()))
          << "tx " << i << ": predicted rw-set does not cover execution";
    }
    // Advance the state exactly as sequential execution would, so later
    // cases exercise predictions against evolving storage.
    if (res.is_ok()) overlay.apply_to(db);
  }
}

TEST(RwSetSoundness, AllShippedContractsAreCovered) {
  const Address fresh = scheme().make_identity(999).address();
  std::vector<SoundnessCase> cases;
  // counter
  cases.push_back({invoke(0, 0, kCounter, evm::encode_call("increment()", {})),
                   true});
  cases.push_back({invoke(1, 0, kCounter, evm::encode_call("get()", {})), true});
  // exchange (NASDAQ shape)
  cases.push_back({invoke(2, 0, kExchange,
                          evm::encode_call("trade(uint256,uint256,uint256)",
                                           {U256{3}, U256{100}, U256{5}})),
                   true});
  cases.push_back(
      {invoke(3, 0, kExchange, evm::encode_call("quote(uint256)", {U256{3}})),
       true});
  // mobility (Uber shape)
  cases.push_back({invoke(4, 0, kMobility,
                          evm::encode_call("ride(uint256,uint256)",
                                           {U256{7}, U256{30}})),
                   true});
  cases.push_back({invoke(5, 0, kMobility,
                          evm::encode_call("fareOf(uint256)", {U256{7}})),
                   true});
  // ticketing (FIFA shape); the second buy reverts — the reverted frame's
  // reads must still be covered.
  cases.push_back({invoke(6, 0, kTicketing,
                          evm::encode_call("buy(uint256,uint256)",
                                           {U256{1}, U256{2}})),
                   true});
  cases.push_back({invoke(7, 0, kTicketing,
                          evm::encode_call("buy(uint256,uint256)",
                                           {U256{1}, U256{2}})),
                   true});
  // staking: payable deposit (callvalue feeds both the value transfer and
  // the storage delta)
  cases.push_back({invoke(8, 0, kStaking, evm::encode_call("deposit()", {}),
                          /*value=*/500),
                   true});
  // token: mint then an insufficient-balance transfer (reverts)
  cases.push_back({invoke(9, 0, kToken,
                          evm::encode_call("mint(uint256,uint256)",
                                           {U256{77}, U256{100}})),
                   true});
  cases.push_back({invoke(10, 0, kToken,
                          evm::encode_call("transfer(uint256,uint256)",
                                           {U256{77}, U256{5}})),
                   true});
  // kvstore
  cases.push_back({invoke(11, 0, kKvStore,
                          evm::encode_call("put(uint256,uint256)",
                                           {U256{42}, U256{9}})),
                   true});
  cases.push_back({invoke(12, 0, kKvStore,
                          evm::encode_call("get(uint256)", {U256{42}})),
                   true});
  // plain transfers: to an existing account and to a fresh one (account
  // creation writes every scalar field)
  cases.push_back({transfer(13, 0, scheme().make_identity(1).address()), true});
  cases.push_back({transfer(13, 1, fresh), true});
  // value-carrying invoke (counter is not payable-gated; the value transfer
  // touches the contract balance)
  cases.push_back({invoke(14, 0, kCounter,
                          evm::encode_call("increment()", {}), /*value=*/3),
                   true});
  // invalid: future nonce — discarded by lazy validation, whose nonce read
  // must still be covered
  cases.push_back({transfer(15, 50, fresh), true});
  // deploy: no usable prediction, explicit ⊤
  TxParams deploy;
  deploy.kind = TxKind::kDeploy;
  deploy.nonce = 0;
  deploy.gas_limit = 3'000'000;
  deploy.data = evm::counter_contract().deploy_code;
  cases.push_back({signed_tx(15, deploy), false});

  run_soundness(cases, evm::BlockContext{});
}

TEST(RwSetSoundness, CoinbaseFeeCreditIsCovered) {
  evm::BlockContext block;
  block.coinbase[19] = 0xEE;
  std::vector<SoundnessCase> cases;
  cases.push_back({invoke(0, 0, kCounter, evm::encode_call("increment()", {})),
                   true});
  cases.push_back({transfer(1, 0, scheme().make_identity(2).address()), true});
  run_soundness(cases, block);
}

// Unknown selectors fall through to REVERT without touching storage; the
// prediction (the full resolved summary) must still be a superset.
TEST(RwSetSoundness, UnknownSelectorRevertIsCovered) {
  std::vector<SoundnessCase> cases;
  cases.push_back({invoke(0, 0, kExchange,
                          evm::encode_call("nonexistent()", {})),
                   true});
  run_soundness(cases, evm::BlockContext{});
}

// ---------------------------------------------------------------------------
// Counter reconciliation: analysis.rwset.{hit,miss,violation} must agree
// exactly with the ParallelExecStats of the blocks that produced them.

TEST(RwSetMetrics, CountersReconcileExactly) {
  state::StateDB db = make_state(16);
  evm::analysis::AnalysisCache cache;
  obs::MetricsRegistry registry;
  ParallelExecutor executor{4, 3};
  executor.set_metrics(&registry);

  ExecutionConfig config;
  config.scheme = &scheme();
  config.analysis_hints = true;
  config.hint_cache = &cache;

  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 8; ++s) {  // hinted: disjoint kvstore puts
    txs.push_back(invoke(s, 0, kKvStore,
                         evm::encode_call("put(uint256,uint256)",
                                          {U256{s}, U256{s + 1}})));
  }
  for (std::uint64_t s = 8; s < 12; ++s) {  // hinted: hot counter
    txs.push_back(
        invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
  }
  for (std::uint64_t s = 12; s < 14; ++s) {  // ⊤: deploys
    TxParams params;
    params.kind = TxKind::kDeploy;
    params.nonce = 0;
    params.gas_limit = 3'000'000;
    params.data = evm::counter_contract().deploy_code;
    txs.push_back(signed_tx(s, params));
  }
  std::vector<const Transaction*> ptrs;
  for (const Transaction& tx : txs) ptrs.push_back(&tx);

  ParallelExecStats stats;
  const auto receipts = executor.execute_block(ptrs, db, {}, config, &stats);
  for (const auto& r : receipts) EXPECT_TRUE(r.is_ok());

  EXPECT_EQ(stats.hinted_txs, 12u);
  EXPECT_EQ(stats.top_txs, 2u);
  EXPECT_EQ(stats.hint_violations, 0u);
  EXPECT_EQ(registry.counter("analysis.rwset.hit").value(), stats.hinted_txs);
  EXPECT_EQ(registry.counter("analysis.rwset.miss").value(), stats.top_txs);
  EXPECT_EQ(registry.counter("analysis.rwset.violation").value(), 0u);

  // Second block through the same executor: counters accumulate, stats are
  // per-call — totals must still reconcile.
  std::vector<Transaction> txs2;
  for (std::uint64_t s = 0; s < 4; ++s) {
    txs2.push_back(invoke(s, 1, kKvStore,
                          evm::encode_call("put(uint256,uint256)",
                                           {U256{100 + s}, U256{1}})));
  }
  std::vector<const Transaction*> ptrs2;
  for (const Transaction& tx : txs2) ptrs2.push_back(&tx);
  ParallelExecStats stats2;
  executor.execute_block(ptrs2, db, {}, config, &stats2);
  EXPECT_EQ(stats2.hinted_txs, 4u);
  EXPECT_EQ(registry.counter("analysis.rwset.hit").value(),
            stats.hinted_txs + stats2.hinted_txs);
  EXPECT_EQ(registry.counter("analysis.rwset.miss").value(), stats.top_txs);
}

TEST(RwSetMetrics, WrongHintsTripTheGuardButNotTheReceipts) {
  // Adversarially wrong hints: non-⊤ predictions with empty access sets, so
  // every execution escapes its prediction. The runtime guard must abort
  // those speculations (violation counter), demote them to blind mode, and
  // still produce receipts identical to sequential execution.
  ExecutionConfig config;
  config.scheme = &scheme();

  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < 6; ++s) {
    txs.push_back(
        invoke(s, 0, kCounter, evm::encode_call("increment()", {})));
    txs.push_back(invoke(s, 1, kKvStore,
                         evm::encode_call("put(uint256,uint256)",
                                          {U256{s}, U256{1}})));
  }

  state::StateDB seq_db = make_state(16);
  std::vector<Result<Receipt>> seq;
  for (const Transaction& tx : txs) {
    seq.push_back(apply_transaction(tx, seq_db, {}, config));
  }
  seq_db.commit();

  state::StateDB par_db = make_state(16);
  std::vector<const Transaction*> ptrs;
  for (const Transaction& tx : txs) ptrs.push_back(&tx);
  const std::vector<PredictedRwSet> wrong(txs.size());  // empty, non-⊤
  obs::MetricsRegistry registry;
  ParallelExecutor executor{4, 8};
  executor.set_metrics(&registry);
  config.analysis_hints = true;
  ParallelExecStats stats;
  const auto par =
      executor.execute_block(ptrs, par_db, {}, config, &stats, {}, &wrong);
  par_db.commit();

  EXPECT_GT(stats.hint_violations, 0u);
  EXPECT_EQ(registry.counter("analysis.rwset.violation").value(),
            stats.hint_violations);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].is_ok());
    ASSERT_TRUE(par[i].is_ok()) << par[i].message();
    EXPECT_EQ(seq[i].value().tx_hash, par[i].value().tx_hash);
    EXPECT_EQ(seq[i].value().success, par[i].value().success);
    EXPECT_EQ(seq[i].value().gas_used, par[i].value().gas_used);
  }
  EXPECT_EQ(seq_db.state_root(), par_db.state_root());
}

// AccessSet primitives used by the scheduler.
TEST(AccessSet, SortedDedupAndIntersection) {
  state::AccessSet a;
  const Address x = contract_addr(1);
  const Address y = contract_addr(2);
  a.insert(state::AccessKey::account(x, state::AccessField::kBalance));
  a.insert(state::AccessKey::account(x, state::AccessField::kBalance));  // dup
  a.insert(state::AccessKey::account(x, state::AccessField::kNonce));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(
      a.contains(state::AccessKey::account(x, state::AccessField::kBalance)));
  EXPECT_FALSE(
      a.contains(state::AccessKey::account(y, state::AccessField::kBalance)));

  state::AccessSet b;
  b.insert(state::AccessKey::account(y, state::AccessField::kBalance));
  EXPECT_FALSE(a.intersects(b));
  b.insert(state::AccessKey::account(x, state::AccessField::kNonce));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.contains_all(b));
  state::AccessSet c;
  c.insert(state::AccessKey::account(x, state::AccessField::kNonce));
  EXPECT_TRUE(a.contains_all(c));

  Hash32 slot;
  slot.data[31] = 1;
  state::AccessSet s;
  s.insert(state::AccessKey::storage_slot(x, slot));
  EXPECT_FALSE(s.intersects(a));  // storage never collides with fields
  EXPECT_TRUE(s.contains(state::AccessKey::storage_slot(x, slot)));
}

}  // namespace
}  // namespace srbb::txn
