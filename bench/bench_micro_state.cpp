// State-stack microbenchmarks (docs/STATE.md, EXPERIMENTS.md "State stack"):
//
//   BM_StateRootMptIncremental / BM_StateRootMptFull
//       incremental node-cached MPT root after a small write burst vs a
//       from-scratch rebuild, swept over 10^4..10^6 accounts. The ratio is
//       gated by tools/perf_smoke.sh (incremental must win by >=10x at 10^5).
//   BM_HotRead_{Resident,Backend}
//       flat-snapshot hot-read latency: fully resident vs backend mode with
//       a bounded resident cache (hits stay O(1), misses fault through the
//       backend).
//   BM_CommitPath
//       per-block commit + root publication with deferred roots off/on —
//       the flat-per-tx-latency evidence for the DIABLO-shaped run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "state/statedb.hpp"

namespace {

using namespace srbb;
using namespace srbb::state;

Address addr_of(std::uint64_t i) {
  Address a{};
  put_be64(a.data.data() + 12, i);
  return a;
}

Hash32 slot_of(std::uint64_t i) {
  Hash32 h{};
  put_be64(h.data.data() + 24, i);
  return h;
}

/// `n` externally-owned accounts plus n/16 small contracts.
void populate(StateDB& db, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    db.add_balance(addr_of(i), U256{1'000'000 + i});
    if (i % 16 == 0) {
      db.set_storage(addr_of(i), slot_of(i % 4), U256{i + 1});
    }
  }
  db.commit();
}

void BM_StateRootMptIncremental(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  StateConfig cfg;
  cfg.trie_node_cache_limit = 4 * n;  // memoized refs stay resident
  StateDB db{cfg};
  populate(db, n);
  benchmark::DoNotOptimize(db.state_root_mpt());  // build once outside timing

  Rng rng{n};
  for (auto _ : state) {
    // A block-sized burst: 64 balance writes + 8 storage writes.
    for (int i = 0; i < 64; ++i) {
      db.add_balance(addr_of(rng.next_below(n)), U256{1});
    }
    for (int i = 0; i < 8; ++i) {
      db.set_storage(addr_of(rng.next_below(n)), slot_of(i % 4),
                     U256{1 + rng.next_below(100)});
    }
    db.commit();
    benchmark::DoNotOptimize(db.state_root_mpt());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateRootMptIncremental)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMicrosecond);

void BM_StateRootMptFull(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  StateDB db;
  populate(db, n);

  Rng rng{n};
  for (auto _ : state) {
    db.add_balance(addr_of(rng.next_below(n)), U256{1});
    db.commit();
    benchmark::DoNotOptimize(db.state_root_mpt_full());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateRootMptFull)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

void BM_HotRead_Resident(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  StateDB db;
  populate(db, n);
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.balance(addr_of(rng.next_below(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotRead_Resident)->Arg(100'000);

void BM_HotRead_Backend(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto capacity = static_cast<std::size_t>(state.range(1));
  StateConfig cfg;
  cfg.snapshot_capacity = capacity;
  StateDB db{cfg, std::make_shared<MemoryBackend>()};
  populate(db, n);
  // Touch a hot subset so it is resident; sized to fit the cache.
  const std::uint64_t hot = capacity / 2;
  for (std::uint64_t i = 0; i < hot; ++i) db.prefetch(addr_of(i));

  Rng rng{7};
  for (auto _ : state) {
    // 90% hits in the resident window, 10% faulting cold reads.
    const bool cold = rng.next_below(10) == 0;
    const std::uint64_t idx =
        cold ? hot + rng.next_below(n - hot) : rng.next_below(hot);
    benchmark::DoNotOptimize(db.balance(addr_of(idx)));
  }
  const auto stats = db.backing_stats();
  state.counters["faults"] =
      benchmark::Counter(static_cast<double>(stats.faults));
  state.counters["hits"] = benchmark::Counter(static_cast<double>(stats.hits));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotRead_Backend)->Args({100'000, 8'192});

void BM_CommitPath(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const bool defer = state.range(1) != 0;
  StateConfig cfg;
  cfg.trie_node_cache_limit = 4 * n;
  StateDB db{cfg};
  populate(db, n);
  benchmark::DoNotOptimize(db.state_root_mpt());

  Rng rng{n};
  std::uint64_t index = 0;
  Hash32 last_root{};
  for (auto _ : state) {
    // One DIABLO-shaped block: 128 transfers over a uniform account set.
    for (int i = 0; i < 128; ++i) {
      const Address from = addr_of(rng.next_below(n));
      const Address to = addr_of(rng.next_below(n));
      db.sub_balance(from, U256{1});
      db.add_balance(to, U256{1});
      db.increment_nonce(from);
    }
    db.commit();
    // Deferred mode publishes the memoized root except every 8th block —
    // the oracle's StateConfig::root_interval default.
    if (!defer || index % 8 == 0) {
      last_root = db.state_root_mpt();
    }
    benchmark::DoNotOptimize(last_root);
    ++index;
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_CommitPath)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Args({1'000'000, 0})
    ->Args({1'000'000, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
