// Microbenchmarks for the analysis cache (src/evm/analysis): what one call
// frame pays for jumpdest validation with and without the code-hash-keyed
// cache. The CALL-heavy case is the one the cache exists for — every inner
// frame historically rescanned the callee's bytecode.
#include <benchmark/benchmark.h>

#include "crypto/keccak.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/analysis/cache.hpp"
#include "evm/asm.hpp"
#include "evm/contracts.hpp"
#include "evm/interpreter.hpp"

namespace {

using namespace srbb;

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

const Address kCaller = addr(0xCA);
const Address kHub = addr(0x0A);    // CALL-heavy outer contract
const Address kToken = addr(0x0B);  // callee, the largest shipped runtime

/// Outer contract: 16 CALLs into the token contract per invocation. Each
/// inner frame needs the callee's jumpdest bitmap — the hot path under test.
Bytes call_heavy_hub() {
  auto code = evm::assemble(R"(
    PUSH1 16
  loop:
    DUP1 ISZERO PUSH @done JUMPI
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS CALL POP
    PUSH1 1 SWAP1 SUB
    PUSH @loop JUMP
  done:
    POP STOP
  )");
  return code.value();
}

state::StateDB make_world() {
  state::StateDB db;
  db.add_balance(kCaller, U256{1'000'000});
  db.set_code(kHub, call_heavy_hub());
  db.set_code(kToken, evm::token_contract().runtime_code);
  return db;
}

evm::Message hub_call() {
  evm::Message msg;
  msg.caller = kCaller;
  msg.to = kHub;
  msg.gas = 10'000'000;
  return msg;
}

/// Baseline: per-frame jumpdest rescan (pre-analyzer behaviour).
void BM_CallHeavyRescan(benchmark::State& state) {
  state::StateDB db = make_world();
  evm::Evm evm{db, {}, {}};
  evm.set_analysis_cache(nullptr);
  const evm::Message msg = hub_call();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm.execute(msg));
  }
  state.SetItemsProcessed(state.iterations() * 16);  // inner frames
}
BENCHMARK(BM_CallHeavyRescan);

/// Cached: 17 frames per invocation, all served from one warm analysis.
void BM_CallHeavyCached(benchmark::State& state) {
  state::StateDB db = make_world();
  evm::analysis::AnalysisCache cache;
  evm::Evm evm{db, {}, {}};
  evm.set_analysis_cache(&cache);
  const evm::Message msg = hub_call();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm.execute(msg));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_CallHeavyCached);

/// The raw scan the rescan path runs once per frame.
void BM_JumpdestBitmap(benchmark::State& state) {
  const Bytes& code = evm::token_contract().runtime_code;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm::analysis::jumpdest_bitmap(BytesView{code}));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * code.size()));
}
BENCHMARK(BM_JumpdestBitmap);

/// The lookup the cached path runs once per frame (hash already memoized).
void BM_CacheHitLookup(benchmark::State& state) {
  const Bytes& code = evm::token_contract().runtime_code;
  const Hash32 key = crypto::Keccak256::hash(BytesView{code});
  evm::analysis::AnalysisCache cache;
  (void)cache.get(key, BytesView{code});  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key, BytesView{code}));
  }
}
BENCHMARK(BM_CacheHitLookup);

/// Full static analysis, paid once per distinct contract per process.
void BM_AnalyzeTokenRuntime(benchmark::State& state) {
  const Bytes& code = evm::token_contract().runtime_code;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm::analysis::analyze(BytesView{code}));
  }
}
BENCHMARK(BM_AnalyzeTokenRuntime);

}  // namespace
