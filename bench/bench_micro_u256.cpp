// Microbenchmarks for the 256-bit integer substrate: these costs bound the
// EVM interpreter's arithmetic throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/u256.hpp"

namespace {

using srbb::Rng;
using srbb::U256;

U256 rand_u256(Rng& rng) {
  return U256{rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()};
}

void BM_U256_Add(benchmark::State& state) {
  Rng rng{1};
  const U256 a = rand_u256(rng);
  U256 b = rand_u256(rng);
  for (auto _ : state) {
    b = a + b;
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_U256_Add);

void BM_U256_Mul(benchmark::State& state) {
  Rng rng{2};
  const U256 a = rand_u256(rng);
  U256 b = rand_u256(rng);
  for (auto _ : state) {
    b = a * b;
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_U256_Mul);

void BM_U256_DivWide(benchmark::State& state) {
  Rng rng{3};
  const U256 a = rand_u256(rng);
  U256 d = rand_u256(rng) >> 100;
  if (d.is_zero()) d = U256{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a / d);
  }
}
BENCHMARK(BM_U256_DivWide);

void BM_U256_DivSmall(benchmark::State& state) {
  Rng rng{4};
  const U256 a = rand_u256(rng);
  const U256 d{rng.next_u64() | 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a / d);
  }
}
BENCHMARK(BM_U256_DivSmall);

void BM_U256_MulMod(benchmark::State& state) {
  Rng rng{5};
  const U256 a = rand_u256(rng);
  const U256 b = rand_u256(rng);
  const U256 m = rand_u256(rng) | U256::one();
  for (auto _ : state) {
    benchmark::DoNotOptimize(srbb::mulmod(a, b, m));
  }
}
BENCHMARK(BM_U256_MulMod);

void BM_U256_ExpPow(benchmark::State& state) {
  Rng rng{6};
  const U256 base = rand_u256(rng);
  const U256 e{rng.next_u64()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(srbb::exp_pow(base, e));
  }
}
BENCHMARK(BM_U256_ExpPow);

void BM_U256_ToDec(benchmark::State& state) {
  Rng rng{7};
  const U256 a = rand_u256(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_dec());
  }
}
BENCHMARK(BM_U256_ToDec);

}  // namespace
