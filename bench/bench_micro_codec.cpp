// Microbenchmarks for the wire codec: the copying RLP decoder against the
// zero-copy view parser, and the transaction / block / superblock decode
// paths built on them (docs/PERF.md).
#include <benchmark/benchmark.h>

#include <vector>

#include "codec/rlp.hpp"
#include "txn/block.hpp"
#include "txn/transaction.hpp"

namespace {

using namespace srbb;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

txn::Transaction make_tx(std::size_t i, std::size_t data_size) {
  txn::TxParams params;
  params.nonce = i;
  params.gas_limit = 60'000;
  params.data = Bytes(data_size, static_cast<std::uint8_t>(i));
  return txn::make_signed(params, scheme().make_identity(i % 16 + 1), scheme());
}

Bytes nested_rlp() {
  // A representative frame: a list of 64 transaction-shaped strings.
  rlp::ListBuilder list;
  for (std::size_t i = 0; i < 64; ++i) list.add_bytes(make_tx(i, 100).encode());
  return list.build();
}

void BM_RlpDecodeCopying(benchmark::State& state) {
  const Bytes wire = nested_rlp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlp::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_RlpDecodeCopying);

void BM_RlpDecodeView(benchmark::State& state) {
  const Bytes wire = nested_rlp();
  rlp::ViewDoc doc;  // arena reused across frames, as the node does
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlp::decode_view(wire, doc));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_RlpDecodeView);

void BM_TxDecodeCopying(benchmark::State& state) {
  const Bytes wire = make_tx(7, static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::Transaction::decode_copying(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_TxDecodeCopying)->Arg(0)->Arg(256)->Arg(4096);

void BM_TxDecodeView(benchmark::State& state) {
  const Bytes wire = make_tx(7, static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::Transaction::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_TxDecodeView)->Arg(0)->Arg(256)->Arg(4096);

txn::Block make_bench_block(std::size_t tx_count) {
  std::vector<txn::TxPtr> txs;
  for (std::size_t i = 0; i < tx_count; ++i) {
    txs.push_back(txn::make_tx_ptr(make_tx(i, 100)));
  }
  return txn::make_block(1, 0, 0, Hash32{}, std::move(txs),
                         scheme().make_identity(1), scheme());
}

void BM_BlockDecode(benchmark::State& state) {
  const Bytes wire =
      txn::encode_block(make_bench_block(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::decode_block(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockDecode)->Arg(16)->Arg(256);

void BM_SuperblockDecode(benchmark::State& state) {
  std::vector<txn::BlockPtr> blocks;
  for (int b = 0; b < 4; ++b) {
    blocks.push_back(std::make_shared<const txn::Block>(
        make_bench_block(static_cast<std::size_t>(state.range(0)))));
  }
  const Bytes wire = txn::encode_superblock(1, blocks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::decode_superblock(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_SuperblockDecode)->Arg(64);

}  // namespace
