// Microbenchmarks for the transaction pool: admission, dedup and batch
// extraction under the loads the congestion experiments generate.
#include <benchmark/benchmark.h>

#include <vector>

#include "pool/txpool.hpp"

namespace {

using namespace srbb;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

std::vector<txn::TxPtr> make_txs(std::size_t count) {
  std::vector<txn::TxPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    txn::TxParams params;
    params.nonce = i;
    out.push_back(txn::make_tx_ptr(
        txn::make_signed(params, scheme().make_identity(i % 64), scheme())));
  }
  return out;
}

void BM_PoolAdd(benchmark::State& state) {
  const auto txs = make_txs(4096);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    state.ResumeTiming();
    for (const auto& tx : txs) pool.add(tx, 0);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PoolAdd);

void BM_PoolDuplicateRejection(benchmark::State& state) {
  const auto txs = make_txs(1024);
  pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
  for (const auto& tx : txs) pool.add(tx, 0);
  for (auto _ : state) {
    for (const auto& tx : txs) {
      benchmark::DoNotOptimize(pool.add(tx, 0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PoolDuplicateRejection);

void BM_PoolTakeBatch(benchmark::State& state) {
  const auto txs = make_txs(4096);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    for (const auto& tx : txs) pool.add(tx, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.take_batch(4096, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PoolTakeBatch);

void BM_PoolRemoveCommitted(benchmark::State& state) {
  const auto txs = make_txs(4096);
  std::vector<Hash32> half;
  for (std::size_t i = 0; i < txs.size(); i += 2) half.push_back(txs[i]->hash);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    for (const auto& tx : txs) pool.add(tx, 0);
    state.ResumeTiming();
    pool.remove_committed(half);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * half.size());
}
BENCHMARK(BM_PoolRemoveCommitted);

void BM_TxHashAndCache(benchmark::State& state) {
  txn::TxParams params;
  params.gas_limit = 30'000;
  const txn::Transaction tx =
      txn::make_signed(params, scheme().make_identity(1), scheme());
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::make_tx_ptr(tx));
  }
}
BENCHMARK(BM_TxHashAndCache);

}  // namespace
