// Microbenchmarks for the transaction pool: admission, dedup and batch
// extraction under the loads the congestion experiments generate.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "pool/txpool.hpp"
#include "state/statedb.hpp"
#include "txn/pipeline.hpp"
#include "txn/validation.hpp"

namespace {

using namespace srbb;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

std::vector<txn::TxPtr> make_txs(std::size_t count) {
  std::vector<txn::TxPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    txn::TxParams params;
    params.nonce = i;
    out.push_back(txn::make_tx_ptr(
        txn::make_signed(params, scheme().make_identity(i % 64), scheme())));
  }
  return out;
}

void BM_PoolAdd(benchmark::State& state) {
  const auto txs = make_txs(4096);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    state.ResumeTiming();
    for (const auto& tx : txs) pool.add(tx, 0);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PoolAdd);

void BM_PoolDuplicateRejection(benchmark::State& state) {
  const auto txs = make_txs(1024);
  pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
  for (const auto& tx : txs) pool.add(tx, 0);
  for (auto _ : state) {
    for (const auto& tx : txs) {
      benchmark::DoNotOptimize(pool.add(tx, 0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PoolDuplicateRejection);

void BM_PoolTakeBatch(benchmark::State& state) {
  const auto txs = make_txs(4096);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    for (const auto& tx : txs) pool.add(tx, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.take_batch(4096, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PoolTakeBatch);

void BM_PoolRemoveCommitted(benchmark::State& state) {
  const auto txs = make_txs(4096);
  std::vector<Hash32> half;
  for (std::size_t i = 0; i < txs.size(); i += 2) half.push_back(txs[i]->hash);
  for (auto _ : state) {
    state.PauseTiming();
    pool::TxPool pool{pool::TxPoolConfig{.capacity = 8192}};
    for (const auto& tx : txs) pool.add(tx, 0);
    state.ResumeTiming();
    pool.remove_committed(half);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * half.size());
}
BENCHMARK(BM_PoolRemoveCommitted);

// --- eager validation: monolith vs staged pipeline (docs/PERF.md) -------
// Real ed25519 signatures and a populated StateDB; the monolith is the
// pre-pipeline per-transaction eager_validate (re-encode + re-hash + one
// verify per tx), the pipeline reads cached fields and batch-verifies.

const crypto::SignatureScheme& ed25519() {
  return crypto::SignatureScheme::ed25519();
}

struct ValidationFixture {
  state::StateDB db;
  txn::ValidationConfig vcfg;
  std::vector<txn::TxPtr> txs;

  explicit ValidationFixture(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Identity identity = ed25519().make_identity(i % 64 + 1);
      if (i < 64) db.add_balance(identity.address(), U256{1'000'000'000});
      txn::TxParams params;
      params.nonce = i / 64;
      params.gas_limit = 30'000;
      txs.push_back(
          txn::make_tx_ptr(txn::make_signed(params, identity, ed25519())));
    }
  }
};

void BM_EagerValidateMonolith(benchmark::State& state) {
  const ValidationFixture fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& tx : fixture.txs) {
      benchmark::DoNotOptimize(
          txn::eager_validate(tx->tx, fixture.db, ed25519(), fixture.vcfg));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EagerValidateMonolith)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_PipelineValidate(benchmark::State& state) {
  const ValidationFixture fixture(static_cast<std::size_t>(state.range(0)));
  const txn::ValidationPipeline pipeline(ed25519(), fixture.vcfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.validate(fixture.txs, fixture.db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineValidate)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_PipelineValidatePooled(benchmark::State& state) {
  const ValidationFixture fixture(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool;
  const crypto::ThreadedSharedBatchVerifier verifier(pool, /*chunk_size=*/64,
                                                     /*min_parallel=*/16);
  txn::PipelineOptions options;
  options.pool = &pool;
  options.verifier = &verifier;
  const txn::ValidationPipeline pipeline(ed25519(), fixture.vcfg, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.validate(fixture.txs, fixture.db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineValidatePooled)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_TxHashAndCache(benchmark::State& state) {
  txn::TxParams params;
  params.gas_limit = 30'000;
  const txn::Transaction tx =
      txn::make_signed(params, scheme().make_identity(1), scheme());
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::make_tx_ptr(tx));
  }
}
BENCHMARK(BM_TxHashAndCache);

}  // namespace
