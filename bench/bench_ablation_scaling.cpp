// Ablation: committee-size scaling. Runs SRBB and EVM+DBFT on a fixed
// offered load while sweeping the validator count, showing (a) SRBB's
// throughput is stable in n and (b) the baseline's duplicate-proposal burden
// grows with n — the mechanism behind the paper's 55x TVPR factor at n=200.
#include <cstdio>

#include "bench_util.hpp"

using namespace srbb;

namespace {

diablo::RunResult run(diablo::SystemKind kind, const char* name,
                      std::uint32_t validators) {
  diablo::RunConfig config;
  config.system_name = name;
  config.kind = kind;
  config.validators = validators;
  config.clients = 4;
  config.workload = diablo::WorkloadSpec::constant("fixed-300tps", 300.0, 30);
  config.latency = sim::LatencyModel::aws_global();
  config.drain = seconds(60);
  // Fixed realistic costs (no 1/scale boost: the load is already absolute).
  return diablo::run_experiment(config);
}

}  // namespace

int main() {
  std::printf("=== Ablation: committee size vs TVPR benefit (300 TPS load) ===\n\n");
  std::printf("%5s %12s %10s %10s %12s %10s %10s\n", "n", "system",
              "tput(TPS)", "commit%", "avg-lat(s)", "attempts", "factor");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const std::uint32_t n : {4u, 10u, 20u, 40u}) {
    const diablo::RunResult srbb = run(diablo::SystemKind::kSrbb, "SRBB", n);
    const diablo::RunResult base =
        run(diablo::SystemKind::kEvmDbft, "EVM+DBFT", n);
    std::printf("%5u %12s %10.2f %9.1f%% %12.2f %10llu %10s\n", n, "SRBB",
                srbb.throughput_tps, srbb.commit_pct, srbb.avg_latency_s,
                static_cast<unsigned long long>(srbb.invalid_discarded +
                                                srbb.committed),
                "-");
    char factor[32];
    std::snprintf(factor, sizeof(factor), "%.1fx",
                  base.throughput_tps > 0
                      ? srbb.throughput_tps / base.throughput_tps
                      : 0.0);
    std::printf("%5u %12s %10.2f %9.1f%% %12.2f %10llu %10s\n", n, "EVM+DBFT",
                base.throughput_tps, base.commit_pct, base.avg_latency_s,
                static_cast<unsigned long long>(base.invalid_discarded +
                                                base.committed),
                factor);
    std::fflush(stdout);
  }
  std::printf(
      "\n'attempts' counts transaction executions attempted at commit "
      "(duplicates across the superblock fail lazy validation and are "
      "discarded); the EVM+DBFT attempt count grows with n while SRBB's "
      "stays at the unique-transaction count, which is why the TVPR factor "
      "grows toward the paper's 55x at n=200.\n");
  return 0;
}
