// Table I reproduction: the flooding attack. Four validators in one region
// (Sydney), one Byzantine; clients stress the network at a 15 000 TPS send
// rate with 20 K valid transactions while the Byzantine proposer floods
// ~10 K invalid (zero-balance-sender) transactions through its blocks.
//
// Expected shape (paper):
//   SRBB w/o RPM : 3998.2 TPS, no valid transaction dropped
//   SRBB w/ RPM  : 4285.71 TPS (~ +7%), no valid transaction dropped,
//                  the flooder slashed to zero deposit and excluded.
#include <cstdio>

#include "bench_util.hpp"

using namespace srbb;

namespace {

diablo::RunResult run_flooding(bool rpm) {
  diablo::RunConfig config;
  config.system_name = rpm ? "SRBB w/ RPM" : "SRBB w/o RPM";
  config.kind = diablo::SystemKind::kSrbb;
  config.rpm = rpm;
  config.validators = 4;  // the smallest BFT committee (f = 1)
  config.clients = 4;
  config.latency = sim::LatencyModel::single_region();  // Sydney only
  // 20K valid transactions at a 15000 TPS send rate (~1.33 s of fire).
  config.workload = diablo::WorkloadSpec::constant(
      "flood", 15'000.0, 2, diablo::TxShape::kTransfer);
  config.workload.rates_per_second = {15'000.0, 5'000.0};  // exactly 20k
  config.drain = seconds(60);
  // The Byzantine validator floods invalid transactions in every proposal,
  // 10K total as in the paper's run.
  config.byzantine = 1;
  config.flood_invalid_per_block = 700;
  config.flood_total = 10'000;
  config.min_block_interval = millis(400);
  config.proposal_timeout = millis(400);
  // DIABLO clients connect to the non-faulty endpoints.
  config.client_target_count = 3;
  return diablo::run_experiment(config);
}

}  // namespace

int main() {
  std::printf("=== Table I: flooding attack, 4 validators (1 Byzantine), "
              "single region ===\n\n");
  std::printf("%-13s %11s %12s %11s %10s %13s %9s\n", "system", "#valid-sent",
              "#invalid", "tput(TPS)", "commit%", "#valid-dropped", "slashes");
  std::printf("%s\n", std::string(88, '-').c_str());

  double tput[2] = {0, 0};
  for (const bool rpm : {false, true}) {
    const diablo::RunResult r = run_flooding(rpm);
    const std::uint64_t dropped = r.sent - r.committed;
    std::printf("%-13s %11llu %12llu %11.2f %9.1f%% %13llu %9llu\n",
                r.system.c_str(), static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.invalid_discarded),
                r.throughput_tps, r.commit_pct,
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(r.slash_events));
    tput[rpm ? 1 : 0] = r.throughput_tps;
  }
  if (tput[0] > 0) {
    std::printf("\nRPM throughput gain: %+.1f%% (paper: +7%%)\n",
                100.0 * (tput[1] - tput[0]) / tput[0]);
  }
  std::printf("Invalid count for the no-RPM run is the flood the network had "
              "to absorb; with RPM the flooder is slashed early, so far fewer "
              "invalid transactions ever reach decided blocks.\n");
  return 0;
}
