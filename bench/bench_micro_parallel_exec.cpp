// Sequential vs optimistic-parallel superblock execution (Block-STM style,
// DESIGN.md "Parallel execution") across conflict regimes:
//   disjoint  — every transaction touches its own accounts (best case),
//   medium    — mostly disjoint transfers with a shared-counter hot spot,
//   hot       — every transaction increments the same storage slot (worst
//               case: the commit prefix degenerates to one tx per round),
// plus the three DApp call shapes the DIABLO traces replay (exchange trade /
// mobility ride / ticketing buy). Note the paper's DApps all bump a global
// stats slot per call, so they are inherently conflict-heavy — the per-arm
// conflict_rate counter makes that visible.
//
// BM_HintedExec runs the same regimes through the analysis-hinted scheduler
// (ExecutionConfig::analysis_hints, docs/ANALYSIS.md §rw-sets), plus two
// hint-specific ones:
//   kv_disjoint — kvstore puts under distinct keys (hints prove non-conflict),
//   top_heavy   — half deployments (⊤ predictions, blind speculation),
//   router_hot  — token transfers routed through a DELEGATECALL proxy to one
//                 shared recipient: only the composed interprocedural summary
//                 (docs/ANALYSIS.md "Interprocedural composition") sees the
//                 cross-contract write, so hints turn blind abort/retry into
//                 exact deferrals with zero aborts.
// tools/perf_smoke.sh gates on hinted aborts being strictly below blind
// aborts for the hot-slot regime, and on zero hinted aborts/fallbacks for
// the router regime.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "crypto/keccak.hpp"
#include "evm/contracts.hpp"
#include "state/statedb.hpp"
#include "txn/parallel_executor.hpp"

namespace {

using namespace srbb;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

constexpr std::size_t kTxCount = 512;

Address contract_addr(std::uint8_t tag) {
  Address a;
  a[0] = 0xC0;
  a[19] = tag;
  return a;
}

const Address kCounter = contract_addr(1);
const Address kExchange = contract_addr(2);
const Address kMobility = contract_addr(3);
const Address kTicketing = contract_addr(4);
const Address kKvStore = contract_addr(5);
const Address kToken = contract_addr(6);
const Address kRouter = contract_addr(7);

enum WorkloadKind : std::int64_t {
  kDisjoint = 0,
  kMedium,
  kHot,
  kNasdaq,
  kUber,
  kFifa,
  kKvDisjoint,
  kTopHeavy,
  kRouterHot,  // rtransfer through the router: cross-contract hot recipient
};

/// Token-ledger slot keccak(addressWord ++ 0) in *router* storage
/// (DELEGATECALL) — genesis funding for the kRouterHot senders.
Hash32 token_balance_slot(const Address& holder) {
  Bytes preimage;
  append(preimage, U256::from_be(holder.view()).be_bytes());
  append(preimage, U256{0}.be_bytes());
  return crypto::Keccak256::hash(BytesView{preimage});
}

struct Workload {
  state::StateDB genesis;
  std::vector<txn::Transaction> txs;
};

txn::Transaction make_tx(std::uint64_t sender, txn::TxParams params) {
  return txn::make_signed(params, scheme().make_identity(sender), scheme());
}

Workload build_workload(WorkloadKind kind) {
  Workload w;
  for (std::uint64_t s = 0; s < kTxCount; ++s) {
    w.genesis.add_balance(scheme().make_identity(s).address(),
                          U256{1'000'000'000});
  }
  auto deploy = [&w](const Address& at, const evm::Contract& contract) {
    w.genesis.create_account(at);
    w.genesis.set_nonce(at, 1);
    w.genesis.set_code(at, contract.runtime_code);
  };
  deploy(kCounter, evm::counter_contract());
  deploy(kExchange, evm::exchange_contract());
  deploy(kMobility, evm::mobility_contract());
  deploy(kTicketing, evm::ticketing_contract());
  deploy(kKvStore, evm::kvstore_contract());
  deploy(kToken, evm::token_contract());
  deploy(kRouter, evm::router_contract(kKvStore, kToken));
  if (kind == kRouterHot) {
    // The router's rtransfer DELEGATECALLs the token, so the ledger lives in
    // *router* storage; fund every sender's balance slot there.
    for (std::uint64_t s = 0; s < kTxCount; ++s) {
      w.genesis.set_storage(
          kRouter, token_balance_slot(scheme().make_identity(s).address()),
          U256{1'000'000'000});
    }
  }
  w.genesis.commit();

  auto invoke = [](std::uint64_t sender, const Address& to, Bytes data) {
    txn::TxParams params;
    params.kind = txn::TxKind::kInvoke;
    params.gas_limit = 300'000;
    params.to = to;
    params.data = std::move(data);
    return make_tx(sender, params);
  };
  for (std::uint64_t i = 0; i < kTxCount; ++i) {
    switch (kind) {
      case kDisjoint: {
        txn::TxParams params;
        params.gas_limit = 30'000;
        params.to = scheme().make_identity(1'000'000 + i).address();
        params.value = U256{5};
        w.txs.push_back(make_tx(i, params));
        break;
      }
      case kMedium:  // one shared-counter hit per 8 disjoint transfers
        if (i % 8 == 0) {
          w.txs.push_back(
              invoke(i, kCounter, evm::encode_call("increment()", {})));
        } else {
          txn::TxParams params;
          params.gas_limit = 30'000;
          params.to = scheme().make_identity(1'000'000 + i).address();
          params.value = U256{5};
          w.txs.push_back(make_tx(i, params));
        }
        break;
      case kHot:
        w.txs.push_back(
            invoke(i, kCounter, evm::encode_call("increment()", {})));
        break;
      case kNasdaq:  // trade(stockId, price, volume) over 5 hot stocks
        w.txs.push_back(invoke(
            i, kExchange,
            evm::encode_call("trade(uint256,uint256,uint256)",
                             {U256{i % 5}, U256{100 + i % 7}, U256{1}})));
        break;
      case kUber:  // ride(rideId, fare), unique ride ids
        w.txs.push_back(invoke(i, kMobility,
                               evm::encode_call("ride(uint256,uint256)",
                                                {U256{i}, U256{25}})));
        break;
      case kFifa:  // buy(matchId, seat), unique seats across 8 matches
        w.txs.push_back(invoke(
            i, kTicketing,
            evm::encode_call("buy(uint256,uint256)", {U256{i % 8}, U256{i}})));
        break;
      case kKvDisjoint:  // put(key, value), unique keys — provably disjoint
        w.txs.push_back(invoke(i, kKvStore,
                               evm::encode_call("put(uint256,uint256)",
                                                {U256{i}, U256{i + 1}})));
        break;
      case kTopHeavy:  // every other tx deploys (⊤ prediction)
        if (i % 2 == 0) {
          txn::TxParams params;
          params.kind = txn::TxKind::kDeploy;
          params.gas_limit = 3'000'000;
          params.data = evm::counter_contract().deploy_code;
          w.txs.push_back(make_tx(i, params));
        } else {
          w.txs.push_back(invoke(i, kKvStore,
                                 evm::encode_call("put(uint256,uint256)",
                                                  {U256{i}, U256{1}})));
        }
        break;
      case kRouterHot:  // cross-contract transfer, one shared hot recipient
        w.txs.push_back(invoke(
            i, kRouter,
            evm::encode_call("rtransfer(uint256,uint256)",
                             {U256{0x707ull}, U256{1}})));
        break;
    }
  }
  return w;
}

const Workload& workload(WorkloadKind kind) {
  static Workload cache[kRouterHot + 1];
  Workload& w = cache[kind];
  if (w.txs.empty()) w = build_workload(kind);
  return w;
}

txn::ExecutionConfig exec_config() {
  txn::ExecutionConfig config;
  config.scheme = &scheme();
  return config;
}

void BM_SequentialExec(benchmark::State& state) {
  const Workload& w = workload(static_cast<WorkloadKind>(state.range(0)));
  const txn::ExecutionConfig config = exec_config();
  for (auto _ : state) {
    state::StateDB db = w.genesis;
    std::uint64_t gas = 0;
    for (const txn::Transaction& tx : w.txs) {
      const auto receipt = txn::apply_transaction(tx, db, {}, config);
      if (receipt.is_ok()) gas += receipt.value().gas_used;
    }
    db.commit();
    benchmark::DoNotOptimize(gas);
    benchmark::DoNotOptimize(db.state_root());
  }
  state.SetItemsProcessed(state.iterations() * kTxCount);
}
BENCHMARK(BM_SequentialExec)
    ->Arg(kDisjoint)->Arg(kMedium)->Arg(kHot)
    ->Arg(kNasdaq)->Arg(kUber)->Arg(kFifa)
    ->Unit(benchmark::kMillisecond)->ArgNames({"workload"});

void BM_ParallelExec(benchmark::State& state) {
  const Workload& w = workload(static_cast<WorkloadKind>(state.range(0)));
  const txn::ExecutionConfig config = exec_config();
  const std::size_t workers = static_cast<std::size_t>(state.range(1));
  txn::ParallelExecutor executor{workers, /*max_retries=*/3};
  std::vector<const txn::Transaction*> ptrs;
  for (const txn::Transaction& tx : w.txs) ptrs.push_back(&tx);
  txn::ParallelExecStats stats;
  for (auto _ : state) {
    state::StateDB db = w.genesis;
    const auto receipts = executor.execute_block(ptrs, db, {}, config, &stats);
    db.commit();
    std::uint64_t gas = 0;
    for (const auto& receipt : receipts) {
      if (receipt.is_ok()) gas += receipt.value().gas_used;
    }
    benchmark::DoNotOptimize(gas);
    benchmark::DoNotOptimize(db.state_root());
  }
  state.SetItemsProcessed(state.iterations() * kTxCount);
  state.counters["conflict_rate"] = stats.conflict_rate();
  state.counters["aborts_per_block"] =
      static_cast<double>(stats.aborts) /
      static_cast<double>(state.iterations());
  state.counters["fallback_txs"] =
      static_cast<double>(stats.fallback_txs) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ParallelExec)
    ->Args({kDisjoint, 2})->Args({kDisjoint, 4})->Args({kDisjoint, 8})
    ->Args({kMedium, 4})->Args({kMedium, 8})
    ->Args({kHot, 4})
    ->Args({kNasdaq, 4})->Args({kUber, 4})->Args({kFifa, 4})
    ->Args({kKvDisjoint, 4})->Args({kTopHeavy, 4})->Args({kRouterHot, 4})
    ->Unit(benchmark::kMillisecond)->ArgNames({"workload", "workers"});

// Same superblocks through the conflict-aware pre-scheduler. Receipts are
// bit-identical to BM_ParallelExec (the tests enforce it); what changes is
// the schedule — aborts_per_block is the headline number perf_smoke gates.
void BM_HintedExec(benchmark::State& state) {
  const Workload& w = workload(static_cast<WorkloadKind>(state.range(0)));
  evm::analysis::AnalysisCache hint_cache;
  txn::ExecutionConfig config = exec_config();
  config.analysis_hints = true;
  config.hint_cache = &hint_cache;
  const std::size_t workers = static_cast<std::size_t>(state.range(1));
  txn::ParallelExecutor executor{workers, /*max_retries=*/3};
  std::vector<const txn::Transaction*> ptrs;
  for (const txn::Transaction& tx : w.txs) ptrs.push_back(&tx);
  txn::ParallelExecStats stats;
  for (auto _ : state) {
    state::StateDB db = w.genesis;
    const auto receipts = executor.execute_block(ptrs, db, {}, config, &stats);
    db.commit();
    std::uint64_t gas = 0;
    for (const auto& receipt : receipts) {
      if (receipt.is_ok()) gas += receipt.value().gas_used;
    }
    benchmark::DoNotOptimize(gas);
    benchmark::DoNotOptimize(db.state_root());
  }
  state.SetItemsProcessed(state.iterations() * kTxCount);
  const double iters = static_cast<double>(state.iterations());
  state.counters["conflict_rate"] = stats.conflict_rate();
  state.counters["aborts_per_block"] = static_cast<double>(stats.aborts) / iters;
  state.counters["fallback_txs"] =
      static_cast<double>(stats.fallback_txs) / iters;
  state.counters["hinted_txs"] = static_cast<double>(stats.hinted_txs) / iters;
  state.counters["top_txs"] = static_cast<double>(stats.top_txs) / iters;
  state.counters["deferrals"] =
      static_cast<double>(stats.hint_deferrals) / iters;
  state.counters["violations"] =
      static_cast<double>(stats.hint_violations) / iters;
}
BENCHMARK(BM_HintedExec)
    ->Args({kKvDisjoint, 4})->Args({kKvDisjoint, 8})
    ->Args({kHot, 4})
    ->Args({kMedium, 4})
    ->Args({kNasdaq, 4})->Args({kUber, 4})->Args({kFifa, 4})
    ->Args({kTopHeavy, 4})->Args({kRouterHot, 4})
    ->Unit(benchmark::kMillisecond)->ArgNames({"workload", "workers"});

}  // namespace
