// Microbenchmarks for the consensus layer: binary DBFT rounds and complete
// superblock instances over an in-memory bus (no network latency), measuring
// pure protocol-processing cost per decided instance.
#include <benchmark/benchmark.h>

#include <deque>

#include "consensus/superblock.hpp"
#include "sim/event_loop.hpp"

namespace {

using namespace srbb;
using namespace srbb::consensus;

void BM_BinaryConsensusUnanimous(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  for (auto _ : state) {
    struct Delivery {
      std::uint32_t to, from, round;
      bool est, value;
    };
    std::deque<Delivery> queue;
    std::vector<std::unique_ptr<BinaryConsensus>> nodes(n);
    int decided = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      BinaryConsensus::Callbacks cb;
      cb.send_est = [&, i](std::uint32_t r, bool v) {
        for (std::uint32_t to = 0; to < n; ++to) {
          if (to != i) queue.push_back({to, i, r, true, v});
        }
        nodes[i]->on_est(i, r, v);
      };
      cb.send_aux = [&, i](std::uint32_t r, bool v) {
        for (std::uint32_t to = 0; to < n; ++to) {
          if (to != i) queue.push_back({to, i, r, false, v});
        }
        nodes[i]->on_aux(i, r, v);
      };
      cb.send_decided = [](bool) {};
      cb.send_decided_to = [](std::uint32_t, bool) {};
      cb.on_decide = [&decided](bool) { ++decided; };
      nodes[i] = std::make_unique<BinaryConsensus>(n, f, std::move(cb));
    }
    for (auto& node : nodes) node->start(true);
    while (!queue.empty()) {
      const Delivery d = queue.front();
      queue.pop_front();
      if (d.est) {
        nodes[d.to]->on_est(d.from, d.round, d.value);
      } else {
        nodes[d.to]->on_aux(d.from, d.round, d.value);
      }
    }
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BinaryConsensusUnanimous)->Arg(4)->Arg(16)->Arg(64);

void BM_SuperblockRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  const auto& scheme = crypto::SignatureScheme::fast_sim();

  // Pre-build one block proposal per validator.
  std::vector<txn::BlockPtr> proposals;
  for (std::uint32_t i = 0; i < n; ++i) {
    txn::TxParams params;
    params.nonce = i;
    auto tx = txn::make_tx_ptr(
        txn::make_signed(params, scheme.make_identity(500 + i), scheme));
    proposals.push_back(std::make_shared<const txn::Block>(txn::make_block(
        0, i, 0, Hash32{}, {tx}, scheme.make_identity(i), scheme)));
  }

  for (auto _ : state) {
    sim::Simulation simulation;
    std::vector<std::unique_ptr<SuperblockInstance>> nodes(n);
    int complete = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      SuperblockConfig config;
      config.n = n;
      config.f = f;
      config.self = i;
      config.scheme = &scheme;
      config.proposal_timeout = millis(100);
      SuperblockCallbacks cb;
      cb.broadcast = [&, i](sim::MessagePtr msg) {
        for (std::uint32_t to = 0; to < n; ++to) {
          if (to == i) continue;
          simulation.schedule_after(0, [&, to, msg, i] {
            nodes[to]->handle(i, msg);
          });
        }
      };
      cb.send_to = [&, i](std::uint32_t to, sim::MessagePtr msg) {
        simulation.schedule_after(0, [&, to, msg, i] {
          nodes[to]->handle(i, msg);
        });
      };
      cb.validate_header = [](const txn::Block&) { return true; };
      cb.on_superblock = [&complete](std::vector<txn::BlockPtr>) {
        ++complete;
      };
      cb.set_timer = [&](SimDuration d, std::function<void()> fn) {
        simulation.schedule_after(d, std::move(fn));
      };
      nodes[i] = std::make_unique<SuperblockInstance>(config, 0, std::move(cb));
    }
    for (std::uint32_t i = 0; i < n; ++i) nodes[i]->begin(proposals[i]);
    simulation.run_until_idle();
    benchmark::DoNotOptimize(complete);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SuperblockRound)->Arg(4)->Arg(10)->Arg(20);

}  // namespace
