// Microbenchmarks for the cryptographic substrate. The eager-validation CPU
// cost used by the network model is calibrated from the Ed25519 verify cost
// measured here.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "crypto/batch.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/keccak.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/signature.hpp"

namespace {

using namespace srbb;
using namespace srbb::crypto;

Bytes make_payload(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(4096);

void BM_Sha512(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(4096);

void BM_Keccak256(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(256)->Arg(4096);

void BM_Ed25519_Sign(benchmark::State& state) {
  const auto kp = ed25519_keypair_from_id(1);
  const Bytes payload = make_payload(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(payload, kp));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  const auto kp = ed25519_keypair_from_id(2);
  const Bytes payload = make_payload(128);
  const Signature sig = ed25519_sign(payload, kp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(payload, sig, kp.public_key));
  }
}
BENCHMARK(BM_Ed25519_Verify);

// --- batch verification strategy sweep (docs/PERF.md) ------------------
// Same workload for every strategy: n distinct (message, signature, key)
// triples, all valid — the common case on the eager-validation path. The
// per-item time is the number to compare against BM_Ed25519_Verify.

struct BatchFixture {
  std::vector<Bytes> messages;
  std::vector<BatchVerifyItem> items;
};

BatchFixture make_batch(std::size_t n) {
  BatchFixture fixture;
  const SignatureScheme& ed = SignatureScheme::ed25519();
  for (std::size_t i = 0; i < n; ++i) {
    const Identity identity = ed.make_identity(i + 1);
    fixture.messages.push_back(make_payload(128));
    fixture.messages.back()[0] = static_cast<std::uint8_t>(i);
    BatchVerifyItem item;
    item.message = BytesView{fixture.messages.back()};
    item.signature = ed.sign(identity, BytesView{fixture.messages.back()});
    item.public_key = identity.public_key;
    fixture.items.push_back(item);
  }
  return fixture;
}

void run_batch_bench(benchmark::State& state, const BatchVerifier& verifier) {
  const SignatureScheme& ed = SignatureScheme::ed25519();
  const BatchFixture fixture =
      make_batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(ed, fixture.items));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Ed25519_BatchSequential(benchmark::State& state) {
  run_batch_bench(state, SequentialBatchVerifier{});
}
BENCHMARK(BM_Ed25519_BatchSequential)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_Ed25519_BatchThreaded(benchmark::State& state) {
  ThreadPool pool;
  run_batch_bench(state, ThreadedBatchVerifier{pool, /*min_parallel=*/0});
}
BENCHMARK(BM_Ed25519_BatchThreaded)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_Ed25519_BatchMultiScalar(benchmark::State& state) {
  run_batch_bench(state, SharedBatchVerifier{});
}
BENCHMARK(BM_Ed25519_BatchMultiScalar)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_Ed25519_BatchThreadedMultiScalar(benchmark::State& state) {
  ThreadPool pool;
  run_batch_bench(state, ThreadedSharedBatchVerifier{pool, /*chunk_size=*/64,
                                                     /*min_parallel=*/0});
}
BENCHMARK(BM_Ed25519_BatchThreadedMultiScalar)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// Worst case for the bisection: every item invalid, forcing the fallback to
// descend to single-equation leaves (cost ~2x sequential, bounded).
void BM_Ed25519_BatchMultiScalarAllBad(benchmark::State& state) {
  const SignatureScheme& ed = SignatureScheme::ed25519();
  BatchFixture fixture = make_batch(static_cast<std::size_t>(state.range(0)));
  for (auto& item : fixture.items) item.signature[5] ^= 1;
  const SharedBatchVerifier verifier;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(ed, fixture.items));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Ed25519_BatchMultiScalarAllBad)->Arg(8)->Arg(64);

void BM_FastSim_SignVerify(benchmark::State& state) {
  const SignatureScheme& scheme = SignatureScheme::fast_sim();
  const Identity id = scheme.make_identity(3);
  const Bytes payload = make_payload(128);
  const Signature sig = scheme.sign(id, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verify(payload, sig, id.public_key));
  }
}
BENCHMARK(BM_FastSim_SignVerify);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    std::uint8_t tag[4];
    put_be32(tag, static_cast<std::uint32_t>(i));
    leaves.push_back(Sha256::hash(BytesView{tag, 4}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(merkle_root(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
