// Microbenchmarks for the cryptographic substrate. The eager-validation CPU
// cost used by the network model is calibrated from the Ed25519 verify cost
// measured here.
#include <benchmark/benchmark.h>

#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/keccak.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/signature.hpp"

namespace {

using namespace srbb;
using namespace srbb::crypto;

Bytes make_payload(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(4096);

void BM_Sha512(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(4096);

void BM_Keccak256(benchmark::State& state) {
  const Bytes payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(256)->Arg(4096);

void BM_Ed25519_Sign(benchmark::State& state) {
  const auto kp = ed25519_keypair_from_id(1);
  const Bytes payload = make_payload(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(payload, kp));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  const auto kp = ed25519_keypair_from_id(2);
  const Bytes payload = make_payload(128);
  const Signature sig = ed25519_sign(payload, kp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(payload, sig, kp.public_key));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_FastSim_SignVerify(benchmark::State& state) {
  const SignatureScheme& scheme = SignatureScheme::fast_sim();
  const Identity id = scheme.make_identity(3);
  const Bytes payload = make_payload(128);
  const Signature sig = scheme.sign(id, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verify(payload, sig, id.public_key));
  }
}
BENCHMARK(BM_FastSim_SignVerify);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    std::uint8_t tag[4];
    put_be32(tag, static_cast<std::uint32_t>(i));
    leaves.push_back(Sha256::hash(BytesView{tag, 4}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(merkle_root(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
