// Ablation: gossip fanout sweep for the modern-blockchain protocol. Fanout
// trades propagation speed against duplicate receptions and bandwidth; no
// setting removes the n-fold validation redundancy, which is the paper's
// point — TVPR wins by construction, not by tuning.
#include <cstdio>

#include "chains/gossip_chain.hpp"
#include "diablo/client.hpp"
#include "diablo/runner.hpp"
#include "evm/contracts.hpp"

using namespace srbb;

namespace {

struct FanoutResult {
  std::uint64_t committed = 0;
  std::uint64_t gossip_msgs = 0;
  std::uint64_t network_bytes = 0;
  double avg_latency_s = 0;
};

FanoutResult run(std::size_t fanout) {
  sim::Simulation simulation;
  sim::NetworkConfig net_config;
  net_config.latency = sim::LatencyModel::aws_global();
  sim::Network network{simulation, net_config};
  const std::uint32_t n = 20;
  sim::GossipOverlay overlay{n, fanout, 11};

  node::GenesisSpec genesis;
  std::vector<crypto::Identity> senders;
  const auto& scheme = crypto::SignatureScheme::fast_sim();
  for (std::size_t i = 0; i < 512; ++i) {
    senders.push_back(scheme.make_identity(1'000'000 + i));
    genesis.accounts.push_back({senders.back().address(), U256{1'000'000'000}});
  }
  auto oracle = std::make_shared<node::ExecutionOracle>(
      genesis, evm::BlockContext{}, scheme);

  chains::ChainPreset preset = chains::preset_quorum_ibft();
  preset.gossip_fanout = fanout;
  std::vector<std::unique_ptr<chains::GossipChainNode>> validators;
  const auto regions = net_config.latency.assign_round_robin(n + 1);
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    chains::GossipChainConfig config;
    config.n = n;
    config.self = rank;
    config.preset = preset;
    config.scheme = &scheme;
    validators.push_back(std::make_unique<chains::GossipChainNode>(
        simulation, rank, regions[rank], config, oracle, &overlay));
    network.attach(validators.back().get());
  }
  diablo::ClientNode client{simulation, n, regions[n]};
  network.attach(&client);

  const auto workload = diablo::WorkloadSpec::constant("steady", 100.0, 20);
  const auto schedule = diablo::send_schedule(workload);
  std::vector<std::uint64_t> nonces(senders.size(), 0);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const std::size_t sender = i % senders.size();
    txn::TxParams params;
    params.nonce = nonces[sender]++;
    params.gas_limit = 30'000;
    params.to = scheme.make_identity(9).address();
    params.value = U256{1};
    client.add_submission(
        schedule[i],
        txn::make_tx_ptr(txn::make_signed(params, senders[sender], scheme)),
        static_cast<sim::NodeId>(i % n));
  }
  for (auto& validator : validators) validator->start();
  client.start();
  simulation.run_until(workload.duration() + seconds(60));

  FanoutResult result;
  result.committed = client.committed();
  for (const auto& validator : validators) {
    result.gossip_msgs += validator->metrics().gossip_txs_sent;
  }
  result.network_bytes = network.total_bytes();
  const auto latencies = client.latencies();
  for (const double l : latencies) result.avg_latency_s += l;
  if (!latencies.empty()) {
    result.avg_latency_s /= static_cast<double>(latencies.size());
  }
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation: gossip fanout (modern protocol, 20 validators, "
              "100 TPS) ===\n\n");
  std::printf("%8s %10s %16s %14s %12s\n", "fanout", "committed",
              "gossip-msgs/tx", "net-MB", "avg-lat(s)");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const std::size_t fanout : {2u, 4u, 8u, 16u}) {
    const FanoutResult r = run(fanout);
    std::printf("%8zu %10llu %16.1f %14.1f %12.2f\n", fanout,
                static_cast<unsigned long long>(r.committed),
                static_cast<double>(r.gossip_msgs) / 2000.0,
                static_cast<double>(r.network_bytes) / 1e6, r.avg_latency_s);
    std::fflush(stdout);
  }
  std::printf("\nHigher fanout speeds propagation but multiplies duplicate "
              "receptions and bandwidth; the per-validator validation burden "
              "(one eager validation per tx per validator) is unchanged.\n");
  return 0;
}
