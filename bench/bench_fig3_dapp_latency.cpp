// Figure 3 reproduction: average latency for the NASDAQ, Uber and FIFA DApp
// workloads across the six modern chains, the EVM+DBFT baseline and SRBB.
//
// Expected shape (paper): SRBB has the lowest latency on NASDAQ (6.6 s) and
// Uber (3.9 s); on FIFA it shows ~64 s because it commits 98% of a workload
// the others barely commit at all (chains reporting tiny latencies there are
// committing only the first few percent of transactions). Modern chains sit
// above 20 s under load.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace srbb;

int main() {
  const double scale = benchutil::scale_from_env();
  benchutil::print_banner("Figure 3: DApp latency", scale);

  const std::vector<diablo::WorkloadSpec> workloads = {
      diablo::WorkloadSpec::nasdaq(), diablo::WorkloadSpec::uber(),
      diablo::WorkloadSpec::fifa()};

  std::printf("%-12s %-8s %10s %10s %10s %10s %9s\n", "system", "workload",
              "avg-lat", "p50-lat", "p95-lat", "max-lat", "commit%");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (const auto& workload : workloads) {
    std::vector<diablo::RunConfig> configs;
    for (const auto& preset : chains::all_modern_presets()) {
      configs.push_back(benchutil::modern_config(preset, workload));
    }
    configs.push_back(benchutil::paper_config(
        "EVM+DBFT", diablo::SystemKind::kEvmDbft, workload));
    configs.push_back(
        benchutil::paper_config("SRBB", diablo::SystemKind::kSrbb, workload));

    std::vector<diablo::RunResult> results;
    for (const auto& config : configs) {
      diablo::RunResult r =
          diablo::run_experiment(diablo::scale_config(config, scale));
      std::printf("%-12s %-8s %9.2fs %9.2fs %9.2fs %9.2fs %8.1f%%\n",
                  r.system.c_str(), r.workload.c_str(), r.avg_latency_s,
                  r.p50_latency_s, r.p95_latency_s, r.max_latency_s,
                  r.commit_pct);
      std::fflush(stdout);
      results.push_back(std::move(r));
    }
    // Where the end-to-end latency is spent: per-phase histograms from the
    // run's metrics registry (DESIGN.md §8).
    for (const auto& r : results) {
      const std::string phases = diablo::format_phase_histograms(r);
      if (phases.empty()) continue;
      std::printf("[%s/%s]\n%s\n", r.system.c_str(), r.workload.c_str(),
                  phases.c_str());
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nNote: a low latency next to a low commit%% means the chain only "
      "committed its earliest transactions (the paper makes the same caveat "
      "for Avalanche/Diem/Solana on FIFA).\n");
  return 0;
}
