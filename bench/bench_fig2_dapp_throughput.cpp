// Figure 2 reproduction: average throughput (TPS) and commit percentage for
// the NASDAQ, Uber and FIFA DApp workloads across Algorand, Avalanche, Diem,
// Ethereum PoA, Quorum IBFT, Solana, the EVM+DBFT baseline, and SRBB.
//
// Expected shape (paper, 200 validators / 10 regions):
//   - SRBB commits 100% of NASDAQ and Uber and >=98% of FIFA, with the
//     highest throughput on all three (166.61 / 835.15 / 1819 TPS).
//   - every modern chain loses transactions on FIFA (<=47% commit) and the
//     gossip-saturated ones lose on the NASDAQ burst as well.
//   - EVM+DBFT (no TVPR) collapses under duplicate proposals.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace srbb;

int main() {
  const double scale = benchutil::scale_from_env();
  benchutil::print_banner("Figure 2: DApp throughput & commit percentage",
                          scale);

  const std::vector<diablo::WorkloadSpec> workloads = {
      diablo::WorkloadSpec::nasdaq(), diablo::WorkloadSpec::uber(),
      diablo::WorkloadSpec::fifa()};

  std::vector<diablo::RunResult> results;
  for (const auto& workload : workloads) {
    for (const auto& preset : chains::all_modern_presets()) {
      const auto config = diablo::scale_config(
          benchutil::modern_config(preset, workload), scale);
      results.push_back(diablo::run_experiment(config));
      std::printf("%s\n", diablo::format_row(results.back()).c_str());
      std::fflush(stdout);
    }
    {
      auto config = benchutil::paper_config(
          "EVM+DBFT", diablo::SystemKind::kEvmDbft, workload);
      results.push_back(
          diablo::run_experiment(diablo::scale_config(config, scale)));
      std::printf("%s\n", diablo::format_row(results.back()).c_str());
      std::fflush(stdout);
    }
    {
      auto config =
          benchutil::paper_config("SRBB", diablo::SystemKind::kSrbb, workload);
      results.push_back(
          diablo::run_experiment(diablo::scale_config(config, scale)));
      std::printf("%s\n", diablo::format_row(results.back()).c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\n%s\n", diablo::format_table(results).c_str());
  std::printf("\nDiagnostics:\n");
  for (const auto& result : results) {
    std::printf("%s\n", diablo::format_diagnostics(result).c_str());
  }
  std::printf("\nPer-phase commit-path latency (DESIGN.md §8):\n");
  for (const auto& result : results) {
    const std::string phases = diablo::format_phase_histograms(result);
    if (phases.empty()) continue;
    std::printf("[%s/%s]\n%s\n", result.system.c_str(),
                result.workload.c_str(), phases.c_str());
  }
  return 0;
}
