// Shared plumbing for the figure/table reproduction benches.
//
// Scale: the paper deploys 200 validators over 10 AWS regions. A full-scale
// gossip-chain simulation moves ~10^9 messages, so benches default to
// SRBB_SCALE=0.05 (10 validators, rates scaled to keep per-validator load —
// and therefore congestion — unchanged; see scale_config). Override with
//   SRBB_SCALE=0.2 ./bench_fig2_dapp_throughput
//   SRBB_FULL=1    ...        # the paper's full 200-validator setup
#pragma once

#include <cstdlib>
#include <cstdio>
#include <string>

#include "chains/presets.hpp"
#include "diablo/report.hpp"
#include "diablo/runner.hpp"

namespace srbb::benchutil {

inline double scale_from_env() {
  if (const char* full = std::getenv("SRBB_FULL");
      full != nullptr && full[0] == '1') {
    return 1.0;
  }
  if (const char* scale = std::getenv("SRBB_SCALE")) {
    const double parsed = std::atof(scale);
    if (parsed > 0.0 && parsed <= 1.0) return parsed;
  }
  return 0.05;
}

/// Paper-default full-scale config for one system+workload; scaled later.
inline diablo::RunConfig paper_config(const std::string& system,
                                      diablo::SystemKind kind,
                                      const diablo::WorkloadSpec& workload) {
  diablo::RunConfig config;
  config.system_name = system;
  config.kind = kind;
  config.validators = 200;  // 10 AWS regions x 20 (§V)
  config.workload = workload;
  config.latency = sim::LatencyModel::aws_global();
  config.clients = 10;  // one DIABLO client VM per region
  config.drain = seconds(120);
  return config;
}

inline diablo::RunConfig modern_config(const chains::ChainPreset& preset,
                                       const diablo::WorkloadSpec& workload) {
  diablo::RunConfig config =
      paper_config(preset.name, diablo::SystemKind::kModern, workload);
  config.preset = preset;
  return config;
}

inline void print_banner(const char* title, double scale) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "scale=%.3f (validators=%d; rates, pool slots and modern block caps "
      "scaled; set SRBB_FULL=1 for the paper's 200-validator setup)\n\n",
      scale, static_cast<int>(std::max(4.0, 200 * scale)));
}

}  // namespace srbb::benchutil
