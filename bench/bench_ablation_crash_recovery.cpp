// Ablation: crash/recovery under load (DESIGN.md §7). One of the four
// validators (f = 1) crashes mid-run, losing all volatile state, and
// restarts four simulated seconds later: it catch-up syncs the decided
// chain from its peers and rejoins consensus at the frontier. The windowed
// commit counts show the three phases — full-strength throughput before the
// crash, n-1 operation during it (DBFT stays live with f faulty), and
// recovery once the revenant has caught up — for SRBB and the EVM+DBFT
// baseline.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

using namespace srbb;

namespace {

constexpr SimTime kCrashAt = seconds(4);
constexpr SimTime kRestartAt = seconds(8);

diablo::RunResult run(diablo::SystemKind kind, const char* name) {
  diablo::RunConfig config;
  config.system_name = name;
  config.kind = kind;
  config.validators = 4;
  config.clients = 4;
  config.latency = sim::LatencyModel::single_region();
  config.workload = diablo::WorkloadSpec::constant("crash-recovery", 400.0, 12);
  config.drain = seconds(8);
  // Crash recovery wipes the oracle, so each validator must own its replica.
  config.replicated_execution = true;
  config.rebroadcast_interval = millis(200);
  config.tps_window = seconds(1);
  // DIABLO-style retry: clients re-point transactions stranded at the
  // crashed endpoint to the next validator.
  config.client_resend_timeout = millis(800);

  sim::CrashSpec crash;
  crash.node = 3;
  crash.at = kCrashAt;
  crash.restart_at = kRestartAt;
  config.faults.crashes.push_back(crash);
  return diablo::run_experiment(config);
}

const char* phase_of(std::size_t window) {
  const SimTime start = static_cast<SimTime>(window) * seconds(1);
  if (start < kCrashAt) return "pre-crash";
  if (start < kRestartAt) return "crashed (n-1)";
  return "recovered";
}

}  // namespace

int main() {
  std::printf("=== Ablation: crash + catch-up recovery (4 validators, f=1; "
              "node 3 down %llus-%llus) ===\n\n",
              static_cast<unsigned long long>(to_seconds(kCrashAt)),
              static_cast<unsigned long long>(to_seconds(kRestartAt)));

  const diablo::RunResult srbb = run(diablo::SystemKind::kSrbb, "SRBB");
  const diablo::RunResult dbft = run(diablo::SystemKind::kEvmDbft, "EVM+DBFT");

  std::printf("%8s %12s %14s %16s\n", "window", "SRBB(TPS)", "EVM+DBFT(TPS)",
              "phase");
  std::printf("%s\n", std::string(54, '-').c_str());
  const std::size_t windows =
      std::min(srbb.window_commits.size(), dbft.window_commits.size());
  for (std::size_t w = 0; w < windows; ++w) {
    std::printf("%5zus-%zus %12llu %14llu %16s\n", w, w + 1,
                static_cast<unsigned long long>(srbb.window_commits[w]),
                static_cast<unsigned long long>(dbft.window_commits[w]),
                phase_of(w));
  }

  for (const diablo::RunResult* r : {&srbb, &dbft}) {
    std::printf(
        "\n%s: %.1f TPS overall, %.1f%% committed; crashes=%llu "
        "restarts=%llu superblocks re-fetched by catch-up sync=%llu\n",
        r->system.c_str(), r->throughput_tps, r->commit_pct,
        static_cast<unsigned long long>(r->validator_crashes),
        static_cast<unsigned long long>(r->validator_restarts),
        static_cast<unsigned long long>(r->superblocks_synced));
  }
  std::printf(
      "\nConsensus stays live through the crash (DBFT tolerates f faults); "
      "the dip reflects transactions stranded at the dead endpoint until "
      "client retry re-points them. After restart the revenant replays the "
      "decided chain via catch-up sync and rejoins at the frontier.\n");
  return 0;
}
