// Ablation: flooding intensity sweep. Varies the number of invalid
// transactions a Byzantine proposer stuffs into each block, with and without
// RPM, extending Table I into a curve: the throughput cost of the flood
// grows with its intensity, and RPM caps it by slashing the flooder after
// its first decided bad block.
#include <cstdio>

#include "bench_util.hpp"

using namespace srbb;

namespace {

diablo::RunResult run(bool rpm, std::uint32_t flood_per_block) {
  diablo::RunConfig config;
  config.system_name = rpm ? "w/ RPM" : "w/o RPM";
  config.kind = diablo::SystemKind::kSrbb;
  config.rpm = rpm;
  config.validators = 4;
  config.clients = 4;
  config.latency = sim::LatencyModel::single_region();
  config.workload =
      diablo::WorkloadSpec::constant("stress", 4000.0, 5);  // 20k valid
  config.drain = seconds(60);
  config.byzantine = flood_per_block > 0 ? 1 : 0;
  config.flood_invalid_per_block = flood_per_block;
  // DIABLO clients connect to the non-faulty endpoints (as in Table I).
  config.client_target_count = 3;
  return diablo::run_experiment(config);
}

}  // namespace

int main() {
  std::printf("=== Ablation: flooding intensity vs RPM (4 validators, 1 "
              "Byzantine) ===\n\n");
  std::printf("%14s %10s %12s %10s %14s %9s\n", "invalid/block", "rpm",
              "tput(TPS)", "commit%", "invalid-seen", "slashes");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const std::uint32_t flood : {0u, 100u, 400u, 1000u, 2000u}) {
    for (const bool rpm : {false, true}) {
      const diablo::RunResult r = run(rpm, flood);
      std::printf("%14u %10s %12.2f %9.1f%% %14llu %9llu\n", flood,
                  r.system.c_str(), r.throughput_tps, r.commit_pct,
                  static_cast<unsigned long long>(r.invalid_discarded),
                  static_cast<unsigned long long>(r.slash_events));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nWithout RPM the flood taxes every decided superblock for the whole "
      "run; with RPM the flooder is slashed at its first decided bad block "
      "and excluded, so the invalid-transaction tax is bounded and "
      "throughput recovers (the paper's +7%% at Table I intensity).\n");
  return 0;
}
