// Microbenchmarks for the discrete-event substrate: raw event throughput,
// message delivery through the latency/bandwidth model, and gossip overlay
// construction. These bound how large a deployment the figure benches can
// simulate per wall-clock second.
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/event_loop.hpp"
#include "sim/gossip.hpp"
#include "sim/network.hpp"

namespace {

using namespace srbb;
using namespace srbb::sim;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

struct Blob final : Message {
  std::size_t n;
  explicit Blob(std::size_t bytes) : n(bytes) {}
  std::size_t size_bytes() const override { return n; }
  const char* type() const override { return "blob"; }
};

class Sink : public SimNode {
 public:
  using SimNode::SimNode;
  void handle_message(NodeId, const MessagePtr&) override { ++received; }
  std::uint64_t received = 0;
};

void BM_NetworkDelivery(benchmark::State& state) {
  const std::size_t node_count = 50;
  for (auto _ : state) {
    Simulation sim;
    NetworkConfig config;
    config.latency = LatencyModel::aws_global();
    Network net{sim, config};
    std::vector<std::unique_ptr<Sink>> nodes;
    const auto regions = config.latency.assign_round_robin(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes.push_back(std::make_unique<Sink>(sim, static_cast<NodeId>(i),
                                             regions[i]));
      net.attach(nodes.back().get());
    }
    auto blob = std::make_shared<Blob>(300);
    for (std::size_t i = 0; i < 2000; ++i) {
      nodes[i % node_count]->send(
          static_cast<NodeId>((i * 7) % node_count), blob);
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(net.total_messages());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_NetworkDelivery);

void BM_GossipOverlayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    GossipOverlay overlay{n, 8, seed++};
    benchmark::DoNotOptimize(overlay.peers(0).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GossipOverlayBuild)->Arg(20)->Arg(200);

}  // namespace
