// Ablation: fixed vs adaptive membership through a >f-offline window
// (DESIGN.md §13). Nine validators (f = 2) lose three — more than the
// static committee tolerates — one at a time: rank 6 at 3s, rank 7 at 5s,
// rank 8 at 7s, all restarting near the end of the run. With a fixed
// committee the frontier freezes at the third crash (6 live < n - f = 7)
// until the restarts refill the quorum. With adaptive membership the first
// two casualties are disabled (cap floor((9-1)/4) = 2) and the quorums
// shrink to the effective committee, so the chain keeps committing through
// the whole window — at a degraded cadence, since the down proposers' slots
// still time out each round. The windowed commit counts make the dip depth
// and the recovery time of both modes directly comparable.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"

using namespace srbb;

namespace {

constexpr SimTime kFirstCrash = seconds(3);
constexpr SimTime kSecondCrash = seconds(5);
constexpr SimTime kThirdCrash = seconds(8);
constexpr SimTime kRestartsAt = seconds(14);

diablo::RunResult run(bool adaptive) {
  diablo::RunConfig config;
  config.system_name = adaptive ? "SRBB+adaptive" : "SRBB+fixed";
  config.kind = diablo::SystemKind::kSrbb;
  config.validators = 9;
  config.clients = 4;
  config.latency = sim::LatencyModel::single_region();
  config.workload = diablo::WorkloadSpec::constant("churn", 300.0, 12);
  config.drain = seconds(8);
  // Crash recovery wipes the oracle, so each validator must own its replica.
  config.replicated_execution = true;
  // Disabling only helps if scores can move between crashes: a validator is
  // disabled after 4 missed superblocks, so the commit cadence must outpace
  // the crash spacing (the "gradual" in gradual churn is relative to commit
  // rate). Run at the chaos-harness cadence rather than the WAN defaults.
  config.min_block_interval = millis(100);
  config.proposal_timeout = millis(300);
  config.rebroadcast_interval = millis(200);
  config.tps_window = seconds(1);
  config.client_resend_timeout = millis(800);
  config.adaptive_membership = adaptive;

  config.faults.crashes.push_back({6, kFirstCrash, kRestartsAt});
  config.faults.crashes.push_back({7, kSecondCrash, kRestartsAt + millis(500)});
  config.faults.crashes.push_back({8, kThirdCrash, kRestartsAt + seconds(1)});
  return diablo::run_experiment(config);
}

const char* phase_of(std::size_t window) {
  const SimTime start = static_cast<SimTime>(window) * seconds(1);
  if (start < kFirstCrash) return "full strength";
  if (start < kThirdCrash) return "<= f down";
  if (start < kRestartsAt) return "> f down";
  return "restarting";
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: membership churn (9 validators, f=2; ranks 6/7/8 crash "
      "at %llus/%llus/%llus, restart ~%llus) ===\n\n",
      static_cast<unsigned long long>(to_seconds(kFirstCrash)),
      static_cast<unsigned long long>(to_seconds(kSecondCrash)),
      static_cast<unsigned long long>(to_seconds(kThirdCrash)),
      static_cast<unsigned long long>(to_seconds(kRestartsAt)));

  const diablo::RunResult fixed = run(/*adaptive=*/false);
  const diablo::RunResult adaptive = run(/*adaptive=*/true);

  std::printf("%8s %12s %15s %16s\n", "window", "fixed(TPS)", "adaptive(TPS)",
              "phase");
  std::printf("%s\n", std::string(55, '-').c_str());
  const std::size_t windows =
      std::min(fixed.window_commits.size(), adaptive.window_commits.size());
  for (std::size_t w = 0; w < windows; ++w) {
    std::printf("%5zus-%zus %12llu %15llu %16s\n", w, w + 1,
                static_cast<unsigned long long>(fixed.window_commits[w]),
                static_cast<unsigned long long>(adaptive.window_commits[w]),
                phase_of(w));
  }

  for (const diablo::RunResult* r : {&fixed, &adaptive}) {
    std::printf(
        "\n%s: %.1f TPS overall, %.1f%% committed; disables=%llu "
        "readmissions=%llu removals=%llu synced=%llu\n",
        r->system.c_str(), r->throughput_tps, r->commit_pct,
        static_cast<unsigned long long>(r->membership_disables),
        static_cast<unsigned long long>(r->membership_readmissions),
        static_cast<unsigned long long>(r->membership_removals),
        static_cast<unsigned long long>(r->superblocks_synced));
  }
  std::printf(
      "\nFixed membership stalls outright once the third crash pushes the "
      "committee past f: the > f window commits nothing until the restarts "
      "refill the static quorum. Adaptive membership disables the first two "
      "casualties, shrinks every quorum in lock-step, and keeps committing "
      "through the window (the residual dip is the undisabled third slot "
      "timing out each round); after the restarts the revenants catch up via "
      "sync and are re-admitted once they clear the hysteresis band.\n");
  return 0;
}
