// Microbenchmarks for the SRBB VM: interpreter dispatch, the DApp calls the
// DIABLO workloads execute, and full transaction application. The CostModel
// execution_per_tx figure is sanity-checked against BM_ApplyTransaction.
#include <benchmark/benchmark.h>

#include "evm/asm.hpp"
#include "evm/contracts.hpp"
#include "evm/interpreter.hpp"
#include "txn/executor.hpp"
#include "txn/validation.hpp"

namespace {

using namespace srbb;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

void BM_EvmArithmeticLoop(benchmark::State& state) {
  state::StateDB db;
  const auto code = evm::assemble(R"(
    PUSH1 0
    PUSH2 1000
  loop:
    DUP1 ISZERO PUSH @done JUMPI
    DUP1 SWAP2 ADD SWAP1
    PUSH1 1 SWAP1 SUB
    PUSH @loop JUMP
  done:
    POP PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )");
  db.set_code(addr(1), code.value());
  evm::Evm evm{db, {}, {}};
  evm::Message msg;
  msg.caller = addr(2);
  msg.to = addr(1);
  msg.gas = 10'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm.execute(msg));
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // loop iterations
}
BENCHMARK(BM_EvmArithmeticLoop);

void BM_EvmSha3(benchmark::State& state) {
  state::StateDB db;
  const auto code = evm::assemble(
      "PUSH1 32 PUSH1 0 SHA3 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  db.set_code(addr(1), code.value());
  evm::Evm evm{db, {}, {}};
  evm::Message msg;
  msg.caller = addr(2);
  msg.to = addr(1);
  msg.gas = 1'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evm.execute(msg));
  }
}
BENCHMARK(BM_EvmSha3);

void BM_DappCall(benchmark::State& state) {
  // The exchange trade() call the NASDAQ workload executes.
  state::StateDB db;
  db.set_code(addr(1), evm::exchange_contract().runtime_code);
  db.add_balance(addr(2), U256{1'000'000'000});
  evm::Evm evm{db, {}, {}};
  evm::Message msg;
  msg.caller = addr(2);
  msg.to = addr(1);
  msg.gas = 200'000;
  std::uint64_t i = 0;
  for (auto _ : state) {
    msg.data = evm::encode_call("trade(uint256,uint256,uint256)",
                                {U256{i % 5}, U256{100}, U256{1}});
    benchmark::DoNotOptimize(evm.execute(msg));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DappCall);

void BM_ApplyTransaction(benchmark::State& state) {
  // Full transaction application including signature verification — the
  // commit-path per-transaction cost the network model charges.
  state::StateDB db;
  db.set_code(addr(1), evm::mobility_contract().runtime_code);
  const crypto::Identity sender = scheme().make_identity(1);
  db.add_balance(sender.address(), U256::max() >> 8);
  evm::BlockContext block;
  txn::ExecutionConfig exec;
  exec.scheme = &scheme();
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    txn::TxParams params;
    params.kind = txn::TxKind::kInvoke;
    params.nonce = nonce++;
    params.gas_limit = 200'000;
    params.to = addr(1);
    params.data =
        evm::encode_call("ride(uint256,uint256)", {U256{nonce}, U256{25}});
    const txn::Transaction tx = txn::make_signed(params, sender, scheme());
    benchmark::DoNotOptimize(txn::apply_transaction(tx, db, block, exec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ApplyTransaction);

void BM_EagerValidate(benchmark::State& state) {
  state::StateDB db;
  const crypto::Identity sender = scheme().make_identity(1);
  db.add_balance(sender.address(), U256{1'000'000'000});
  txn::TxParams params;
  params.gas_limit = 30'000;
  params.to = addr(3);
  params.value = U256{1};
  const txn::Transaction tx = txn::make_signed(params, sender, scheme());
  const txn::ValidationConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::eager_validate(tx, db, scheme(), config));
  }
}
BENCHMARK(BM_EagerValidate);

void BM_LazyValidate(benchmark::State& state) {
  state::StateDB db;
  const crypto::Identity sender = scheme().make_identity(1);
  db.add_balance(sender.address(), U256{1'000'000'000});
  txn::TxParams params;
  params.gas_limit = 30'000;
  params.to = addr(3);
  const txn::Transaction tx = txn::make_signed(params, sender, scheme());
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::lazy_validate(tx, db));
  }
}
BENCHMARK(BM_LazyValidate);

void BM_StateRoot(benchmark::State& state) {
  state::StateDB db;
  for (int i = 0; i < state.range(0); ++i) {
    Address a;
    put_be32(a.data.data(), static_cast<std::uint32_t>(i));
    db.add_balance(a, U256{static_cast<std::uint64_t>(i)});
  }
  for (auto _ : state) {
    // Dirty one account so each iteration measures a full recompute rather
    // than the memoized fast path (BM_StateRootMemoized covers that).
    db.add_balance(addr(1), U256{1});
    benchmark::DoNotOptimize(db.state_root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateRoot)->Arg(100)->Arg(1000);

void BM_StateRootMemoized(benchmark::State& state) {
  // Repeated calls with no intervening writes hit the dirty-flag cache —
  // the common oracle pattern (root per index, few accounts changing).
  state::StateDB db;
  for (int i = 0; i < state.range(0); ++i) {
    Address a;
    put_be32(a.data.data(), static_cast<std::uint32_t>(i));
    db.add_balance(a, U256{static_cast<std::uint64_t>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.state_root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateRootMemoized)->Arg(1000);

}  // namespace
