// §V-A headline ablation: SRBB vs the EVM+DBFT baseline (identical except
// TVPR) on the FIFA workload. The paper reports TVPR multiplying throughput
// by 55x and dividing latency by 3.5 at 200 validators.
//
// The collapse mechanism is committee-size dependent: without TVPR every
// validator's pool holds every transaction, so a superblock carries ~n
// near-identical blocks and the commit path pays the per-attempt cost
// (lazy + signature recovery) n times per unique transaction. The factor
// therefore grows with n; this bench measures it at the configured scale and
// bench_ablation_scaling sweeps n to show the trend toward the paper's 55x.
#include <cstdio>

#include "bench_util.hpp"

using namespace srbb;

int main() {
  double scale = benchutil::scale_from_env();
  // This bench only runs two systems, so default to a larger committee than
  // the figure sweeps when the user did not choose a scale.
  if (std::getenv("SRBB_SCALE") == nullptr && std::getenv("SRBB_FULL") == nullptr) {
    scale = 0.1;
  }
  benchutil::print_banner("TVPR ablation (SRBB vs EVM+DBFT, FIFA)", scale);

  const auto workload = diablo::WorkloadSpec::fifa();
  const diablo::RunResult srbb = diablo::run_experiment(diablo::scale_config(
      benchutil::paper_config("SRBB", diablo::SystemKind::kSrbb, workload),
      scale));
  std::printf("%s\n%s\n", diablo::format_row(srbb).c_str(),
              diablo::format_diagnostics(srbb).c_str());
  std::fflush(stdout);
  const diablo::RunResult baseline = diablo::run_experiment(diablo::scale_config(
      benchutil::paper_config("EVM+DBFT", diablo::SystemKind::kEvmDbft,
                              workload),
      scale));
  std::printf("%s\n%s\n", diablo::format_row(baseline).c_str(),
              diablo::format_diagnostics(baseline).c_str());

  std::printf("\n%s\n", diablo::format_header().c_str());
  std::printf("%s\n", diablo::format_row(srbb).c_str());
  std::printf("%s\n", diablo::format_row(baseline).c_str());

  if (baseline.throughput_tps > 0 && srbb.avg_latency_s > 0) {
    std::printf("\nTVPR throughput multiplier : %.1fx (paper: 55x at n=200; "
                "grows with committee size)\n",
                srbb.throughput_tps / baseline.throughput_tps);
    std::printf("TVPR latency divisor       : %.2fx (paper: 3.5x)\n",
                baseline.avg_latency_s / srbb.avg_latency_s);
  }
  std::printf("Eager validations per sent tx: SRBB %.2f vs EVM+DBFT %.2f "
              "(the n-fold redundancy of SS III-A)\n",
              static_cast<double>(srbb.eager_validations) /
                  static_cast<double>(srbb.sent),
              static_cast<double>(baseline.eager_validations) /
                  static_cast<double>(baseline.sent));
  return 0;
}
