// Figure 1 / §III-A quantified: the modern blockchain protocol eagerly
// validates every transaction at every validator and propagates it twice
// (individually, then in blocks); TVPR validates once and propagates blocks
// only. This bench counts exactly those quantities on a steady workload the
// chain can absorb, so the ratios are clean protocol properties rather than
// congestion artefacts.
//
// Expected: eager validations per tx ~= n for the gossip protocol, ~1 for
// SRBB; individual tx propagations ~= fanout * n vs 0.
#include <cstdio>

#include "bench_util.hpp"

using namespace srbb;

namespace {

diablo::RunResult run(bool tvpr, std::uint32_t validators) {
  diablo::RunConfig config;
  config.system_name = tvpr ? "SRBB (TVPR)" : "modern";
  config.kind = tvpr ? diablo::SystemKind::kSrbb : diablo::SystemKind::kEvmDbft;
  config.validators = validators;
  config.clients = 4;
  // Light steady load: far below capacity so nothing is dropped.
  config.workload = diablo::WorkloadSpec::constant("steady", 20.0, 30);
  config.latency = sim::LatencyModel::aws_global();
  config.drain = seconds(30);
  return diablo::run_experiment(config);
}

}  // namespace

int main() {
  std::printf("=== Figure 1 / SS III-A: redundant validation & propagation ===\n\n");
  std::printf("%-12s %5s %12s %18s %18s %14s\n", "protocol", "n", "sent",
              "eager-valid/tx", "tx-gossip-msgs/tx", "net-MB");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const std::uint32_t n : {10u, 20u, 40u}) {
    for (const bool tvpr : {false, true}) {
      const diablo::RunResult r = run(tvpr, n);
      std::printf("%-12s %5u %12llu %18.2f %18.2f %14.1f\n",
                  r.system.c_str(), n,
                  static_cast<unsigned long long>(r.sent),
                  static_cast<double>(r.eager_validations) /
                      static_cast<double>(r.sent),
                  static_cast<double>(r.gossip_tx_messages) /
                      static_cast<double>(r.sent),
                  static_cast<double>(r.network_bytes) / 1e6);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nTVPR removes Alg. 1 line 9: one eager validation per transaction "
      "(at the validator the client contacted) instead of one per validator, "
      "and no individual transaction propagation at all.\n");
  return 0;
}
