#!/usr/bin/env bash
# Perf-smoke gate (docs/PERF.md): build the commit-path microbenches and
# assert the structural speedups this repo claims, as *relative* ratios with
# generous margins so the gate is robust to slow/noisy CI machines:
#
#   1. multi-scalar batch ed25519 (batch 64) beats one-at-a-time verify
#      per item;
#   2. the staged validation pipeline (batch 64) beats the monolithic
#      eager_validate loop;
#   3. zero-copy RLP parse beats the copying decoder on a block-shaped frame;
#   4. analysis-hinted scheduling aborts strictly fewer speculations than
#      blind Block-STM on the hot-slot regime (the rw-set hints claim);
#   5. the incremental node-cached MPT root (block-sized write burst at 1e5
#      accounts) beats the from-scratch rebuild (the state-stack claim);
#   6. on the two-contract router regime the composed interprocedural hints
#      schedule with zero aborts and zero sequential fallbacks while blind
#      speculation aborts (the summary-composition claim).
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" \
      --target bench_micro_crypto bench_micro_pool bench_micro_codec \
               bench_micro_parallel_exec bench_micro_state

out="$build_dir/perf_smoke"
mkdir -p "$out"
"$build_dir/bench/bench_micro_crypto" --benchmark_min_time=0.1 \
    --benchmark_filter='BM_Ed25519_Verify|BM_Ed25519_BatchMultiScalar/64' \
    --benchmark_format=json > "$out/crypto.json"
"$build_dir/bench/bench_micro_pool" --benchmark_min_time=0.1 \
    --benchmark_filter='BM_EagerValidateMonolith/64|BM_PipelineValidate/64' \
    --benchmark_format=json > "$out/pool.json"
"$build_dir/bench/bench_micro_codec" --benchmark_min_time=0.1 \
    --benchmark_filter='BM_RlpDecode' \
    --benchmark_format=json > "$out/codec.json"
"$build_dir/bench/bench_micro_parallel_exec" --benchmark_min_time=0.05 \
    --benchmark_filter='BM_(ParallelExec|HintedExec)/workload:(2|8)/workers:4' \
    --benchmark_format=json > "$out/exec.json"
"$build_dir/bench/bench_micro_state" --benchmark_min_time=0.1 \
    --benchmark_filter='BM_StateRootMpt(Incremental|Full)/100000$' \
    --benchmark_format=json > "$out/state.json"

python3 - "$out" <<'EOF'
import json
import sys

out = sys.argv[1]

def load(path, field="real_time"):
    with open(f"{out}/{path}") as fh:
        doc = json.load(fh)
    return {b["name"]: b[field] for b in doc["benchmarks"]}

crypto = load("crypto.json")
pool = load("pool.json")
codec = load("codec.json")

failures = []

def check(label, got, bound):
    status = "ok" if got < bound else "FAIL"
    print(f"  {label}: ratio {got:.3f} (must be < {bound}) [{status}]")
    if got >= bound:
        failures.append(label)

# 1. Multi-scalar batch verify per item vs single verify. Measured ~0.63 on
#    the reference box; 0.90 leaves headroom for noise while still proving
#    the batch equation shares real work.
batch_per_item = crypto["BM_Ed25519_BatchMultiScalar/64"] / 64.0
check("multiscalar-batch64 / single-verify",
      batch_per_item / crypto["BM_Ed25519_Verify"], 0.90)

# 2. Pipeline vs monolith at batch 64 (same single-core budget; the
#    pipeline additionally drops re-encode/re-hash work). Measured ~0.50.
check("pipeline-batch64 / monolith-batch64",
      pool["BM_PipelineValidate/64"] / pool["BM_EagerValidateMonolith/64"],
      0.85)

# 3. Zero-copy RLP parse vs copying decode on a 64-tx frame. Measured ~0.12.
check("rlp-view / rlp-copying",
      codec["BM_RlpDecodeView"] / codec["BM_RlpDecodeCopying"], 0.70)

# 4. Hinted vs blind speculation aborts on the hot-slot regime (workload 2 =
#    every tx increments the same storage slot). The conflict-aware
#    pre-scheduler serializes the predicted conflict class, so it measures 0
#    aborts/block where blind Block-STM burns its retry budget (~4/block).
#    Gate: strictly fewer aborts, with a deterministic count this is exact.
exec_aborts = load("exec.json", field="aborts_per_block")
blind = exec_aborts["BM_ParallelExec/workload:2/workers:4"]
hinted = exec_aborts["BM_HintedExec/workload:2/workers:4"]
print(f"  hot-slot aborts/block: blind {blind:.2f}, hinted {hinted:.2f}")
if not hinted < blind:
    print("  hinted-aborts / blind-aborts: FAIL (hinted must be strictly lower)")
    failures.append("hinted-aborts")
else:
    print("  hinted-aborts < blind-aborts [ok]")

# 5. Incremental MPT root vs full rebuild at 1e5 accounts. Measured ~0.005
#    (1.9 ms vs 412 ms); 0.10 still proves dirty-subtrie recompute with a
#    10x margin for noise. Note the burst sizes differ (64+8 writes vs 1),
#    which only biases AGAINST the incremental side.
state = load("state.json")
check("mpt-incremental-1e5 / mpt-full-1e5",
      state["BM_StateRootMptIncremental/100000"] /
      state["BM_StateRootMptFull/100000"], 0.10)

# 6. Router regime (workload 8 = token transfers DELEGATECALLed through a
#    proxy, one shared hot recipient). Only the composed interprocedural
#    summary resolves the cross-contract write, so hints must eliminate both
#    aborts and sequential fallbacks entirely; blind speculation aborts and
#    falls back. Deterministic schedule, so the zero is exact.
blind_r = exec_aborts["BM_ParallelExec/workload:8/workers:4"]
hinted_r = exec_aborts["BM_HintedExec/workload:8/workers:4"]
exec_fallback = load("exec.json", field="fallback_txs")
hinted_r_fb = exec_fallback["BM_HintedExec/workload:8/workers:4"]
print(f"  router aborts/block: blind {blind_r:.2f}, hinted {hinted_r:.2f}; "
      f"hinted fallback_txs {hinted_r_fb:.2f}")
if not (hinted_r == 0 and hinted_r_fb == 0 and blind_r > 0):
    print("  router-hinted: FAIL (need hinted aborts == 0, hinted fallbacks"
          " == 0, blind aborts > 0)")
    failures.append("router-hinted")
else:
    print("  router: hinted aborts/fallbacks == 0 < blind aborts [ok]")

if failures:
    print(f"perf_smoke: FAILED ({', '.join(failures)})")
    sys.exit(1)
print("perf_smoke: all ratios within bounds")
EOF
