#!/usr/bin/env bash
# Sanitizer matrix (docs/CORRECTNESS.md "Sanitizer matrix"):
#
#   asan_ubsan  full test suite under AddressSanitizer + UndefinedBehavior-
#               Sanitizer, with SRBB_PARANOID invariant sweeps compiled in —
#               memory errors and UB anywhere in the tier-1 surface.
#   tsan        the concurrency-sensitive subset (parallel executor, oracle
#               parallel path, thread pool, bounded queue, validation
#               pipeline, batch signature verify, state-backend concurrent
#               fault-in) under ThreadSanitizer, via tools/tsan_check.sh.
#               TSan and ASan cannot share a process, hence the separate leg.
#
# Usage: tools/sanitize_matrix.sh [asan_ubsan|tsan|all]   (default: all)
# Build trees: build-asan-ubsan/ and build-tsan/ next to build/.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
leg="${1:-all}"

run_asan_ubsan() {
  local build_dir="$repo_root/build-asan-ubsan"
  cmake -B "$build_dir" -S "$repo_root" \
        -DSRBB_SANITIZE=address,undefined -DSRBB_PARANOID=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j "$(nproc)"
  # The EVM executes nested CALLs by native recursion; the 1024-frame depth
  # limit fits the default 8 MiB stack uninstrumented, but ASan redzones
  # inflate each frame several-fold, so give the test processes more stack.
  ulimit -s 65536 || true
  # halt_on_error so UBSan findings fail the run instead of just logging.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_tsan() {
  "$repo_root/tools/tsan_check.sh" "$repo_root/build-tsan"
}

case "$leg" in
  asan_ubsan) run_asan_ubsan ;;
  tsan)       run_tsan ;;
  all)        run_asan_ubsan; run_tsan ;;
  *)
    echo "usage: $0 [asan_ubsan|tsan|all]" >&2
    exit 2
    ;;
esac
