#!/usr/bin/env python3
"""Determinism lint for SRBB (runs as the `srbb_lint` ctest test).

Every validator must derive bit-identical superblock results, so constructs
whose output depends on process-local state (ASLR, hash seeds, wall clocks,
libc PRNGs) are consensus poison. This linter scans src/ for the patterns
that have historically caused replica divergence in production chains:

  nondet-source    rand()/std::random_device/std::mt19937/system_clock/...
                   anywhere outside src/common/rng.* (the audited
                   deterministic RNG) — wall clocks and libc PRNGs differ
                   across replicas.
  unordered-iter   ranged-for over a std::unordered_{map,set}: iteration
                   order is implementation- and seed-defined, so any hash,
                   serialization, or state mutation fed from it can diverge.
  pointer-key      containers keyed on pointer values: ASLR makes ordering
                   and hashing differ per process.
  uninit-field     scalar struct fields without initializers in files that
                   RLP-encode structs: encoding an indeterminate value is
                   UB and trivially divergent.
  analysis-cache-mutation
                   AnalysisCache clear()/set_metrics() outside
                   src/evm/analysis/: the cache backs the parallel
                   executor's rw-set hints while workers run; mutation from
                   scheduler code races them.
  interproc-bypass direct AnalysisCache summary lookups from src/txn/: a
                   per-contract summary ignores everything behind a CALL,
                   so scheduler/validation code consuming it directly ships
                   stale cross-contract facts. The sanctioned path is the
                   state-keyed InterprocCache wrapper, which revalidates
                   every resolved call edge against the queried state.

Audited sites are suppressed through tools/lint_allowlist.txt; every entry
carries a justification and MUST still match a real finding (stale entries
fail the lint, so the allowlist cannot rot).

Usage: srbb_lint.py --root <repo-root> [--list] [--no-allowlist]
Exit status: 0 clean, 1 findings (or stale allowlist entries), 2 bad usage.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SRC_EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

# ---------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals while keeping
# line structure, so rules never fire on prose or quoted text.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail out
                mode = "code"
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rule: nondet-source
# ---------------------------------------------------------------------------

NONDET_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "libc PRNG"),
    (re.compile(r"std::random_device"), "hardware/OS entropy"),
    (re.compile(r"std::mt19937"), "std PRNG (stream differs across stdlibs)"),
    (re.compile(r"std::default_random_engine"), "implementation-defined PRNG"),
    (re.compile(r"\bsystem_clock\b"), "wall clock"),
    (re.compile(r"\bsteady_clock\b"), "process-local clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "process-local clock"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "wall clock"),
    (re.compile(r"(?<![\w:])getenv\s*\("), "environment-dependent value"),
]

# The audited deterministic RNG implementation is the one allowed home for
# entropy-ish code; SimTime (common/time.hpp) is the virtual clock.
NONDET_EXEMPT = {"src/common/rng.cpp", "src/common/rng.hpp"}


def check_nondet_source(relpath: str, lines: list[str]) -> list[tuple]:
    if relpath in NONDET_EXEMPT:
        return []
    findings = []
    for lineno, line in enumerate(lines, 1):
        for pattern, why in NONDET_PATTERNS:
            if pattern.search(line):
                findings.append(
                    ("nondet-source", relpath, lineno, line.strip(),
                     f"nondeterministic source ({why}); use srbb::Rng / SimTime"))
    return findings


# ---------------------------------------------------------------------------
# Rule: unordered-iter
# ---------------------------------------------------------------------------

UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set)\s*<")
RANGE_FOR = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)\s*[{\n]")
LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")


def collect_unordered_names(stripped: str) -> set[str]:
    """Names of variables/members declared with an unordered container type,
    including through type aliases is out of scope — the lint is a heuristic
    backstop, reviewed allowlist entries carry the precision."""
    names = set()
    for match in UNORDERED_DECL.finditer(stripped):
        i = match.end() - 1  # at '<'
        depth = 0
        n = len(stripped)
        while i < n:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        rest = stripped[i + 1:i + 200]
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={]", rest)
        if decl:
            names.add(decl.group(1))
    return names


def check_unordered_iter(relpath: str, stripped: str,
                         unordered_names: set[str]) -> list[tuple]:
    findings = []
    for match in RANGE_FOR.finditer(stripped):
        range_expr = match.group(2).strip()
        ident = LAST_IDENT.search(range_expr)
        if not ident or ident.group(1) not in unordered_names:
            continue
        lineno = stripped.count("\n", 0, match.start()) + 1
        line = stripped.splitlines()[lineno - 1].strip()
        findings.append(
            ("unordered-iter", relpath, lineno, line,
             f"iterates unordered container '{ident.group(1)}' — order is "
             "hash-seed/implementation defined; sort first if the result "
             "feeds a hash, serialization, or state mutation"))
    return findings


# ---------------------------------------------------------------------------
# Rule: pointer-key
# ---------------------------------------------------------------------------

POINTER_KEY = re.compile(
    r"\b(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*")


def check_pointer_key(relpath: str, lines: list[str]) -> list[tuple]:
    findings = []
    for lineno, line in enumerate(lines, 1):
        if POINTER_KEY.search(line):
            findings.append(
                ("pointer-key", relpath, lineno, line.strip(),
                 "container keyed on a pointer: ASLR makes ordering/hashing "
                 "process-local; key on a value identity instead"))
    return findings


# ---------------------------------------------------------------------------
# Rule: uninit-field
# ---------------------------------------------------------------------------

SCALAR_FIELD = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|bool|int|unsigned"
    r"|long|short|double|float|char)\b"
    r"(?:\s+|\s*::\s*)?[A-Za-z_]\w*\s*;\s*$")
STRUCT_OPEN = re.compile(r"\b(?:struct|class)\s+[A-Za-z_]\w*[^;{]*\{")


def check_uninit_field(relpath: str, stripped: str) -> list[tuple]:
    # Only meaningful where structs get serialized: files that touch the RLP
    # codec or declare encode()/decode() surfaces.
    if "rlp" not in stripped and "encode" not in stripped:
        return []
    findings = []
    lines = stripped.splitlines()
    depth_stack = []  # stack of '{' depths that opened a struct/class body
    depth = 0
    for lineno, line in enumerate(lines, 1):
        if STRUCT_OPEN.search(line):
            depth_stack.append(depth + line.count("{"))
        depth += line.count("{") - line.count("}")
        while depth_stack and depth < depth_stack[-1]:
            depth_stack.pop()
        if not depth_stack or depth != depth_stack[-1]:
            continue
        if SCALAR_FIELD.match(line):
            findings.append(
                ("uninit-field", relpath, lineno, line.strip(),
                 "scalar field without initializer in a serialized struct: "
                 "encoding an indeterminate value is UB and divergent"))
    return findings


# ---------------------------------------------------------------------------
# Rule: float-in-consensus
# ---------------------------------------------------------------------------

# Floating point in consensus-critical code is divergence waiting to happen:
# rounding mode, FMA contraction, x87 excess precision and libm differences
# all vary across replicas. The simulator/diablo layers may use doubles for
# measurement; these directories may not.
FLOAT_CONSENSUS_DIRS = ("src/state/", "src/consensus/", "src/evm/",
                        "src/srbb/")
FLOAT_TYPE = re.compile(r"\b(?:float|double|long\s+double)\b")


def check_float_in_consensus(relpath: str, lines: list[str]) -> list[tuple]:
    if not relpath.startswith(FLOAT_CONSENSUS_DIRS):
        return []
    findings = []
    for lineno, line in enumerate(lines, 1):
        if FLOAT_TYPE.search(line):
            findings.append(
                ("float-in-consensus", relpath, lineno, line.strip(),
                 "floating point in consensus-critical code: rounding and "
                 "excess precision differ across replicas; use U256 or "
                 "fixed-point integers"))
    return findings


# ---------------------------------------------------------------------------
# Rule: analysis-cache-mutation
# ---------------------------------------------------------------------------

# The AnalysisCache holds immutable, code-hash-keyed results that the
# parallel executor's rw-set scheduler resolves hints from while worker
# threads execute (docs/ANALYSIS.md §rw-sets). Outside the analyzer layer the
# only sanctioned operation is get(): a clear() or set_metrics() from
# executor/scheduler code could race the workers or desynchronize the
# analysis.rwset.* counters that tests reconcile exactly. Receivers are
# matched by name (the `*analysis_cache*` / `*hint_cache*` convention and the
# global() accessor) — same heuristic spirit as unordered-iter, with the
# allowlist carrying any audited exception.
ANALYSIS_CACHE_MUTATION = re.compile(
    r"(?:AnalysisCache::global\(\)|\b\w*(?:analysis|hint)_cache\w*)\s*"
    r"(?:\.|->)\s*(?:clear|set_metrics)\s*\(")
ANALYSIS_CACHE_HOME = "src/evm/analysis/"


def check_analysis_cache_mutation(relpath: str, lines: list[str]) -> list[tuple]:
    if relpath.startswith(ANALYSIS_CACHE_HOME):
        return []
    findings = []
    for lineno, line in enumerate(lines, 1):
        if ANALYSIS_CACHE_MUTATION.search(line):
            findings.append(
                ("analysis-cache-mutation", relpath, lineno, line.strip(),
                 "AnalysisCache mutated outside the analyzer entry points: "
                 "cached summaries are shared with concurrently-running "
                 "workers; only get() is safe here — move setup mutations "
                 "into src/evm/analysis/"))
    return findings


# ---------------------------------------------------------------------------
# Rule: interproc-bypass
# ---------------------------------------------------------------------------

# Scheduler and validation code (src/txn/) must obtain callee summaries
# through the state-keyed InterprocCache wrapper
# (evm/analysis/interproc.hpp), never by a direct AnalysisCache lookup: the
# per-contract summary carries no cross-contract facts and is not
# invalidated when a callee's code changes in state. Receivers are matched
# by the `*analysis_cache*` / `*hint_cache*` / `cache` naming convention and
# the global() accessor; `InterprocCache::global().get(...)` itself does not
# match (its receiver is the wrapper, not an AnalysisCache name).
INTERPROC_BYPASS = re.compile(
    r"(?:\bAnalysisCache::global\(\)|\b\w*(?:analysis|hint)_cache\w*|\bcache)"
    r"\s*(?:\.|->)\s*get\s*\(")
INTERPROC_BYPASS_SCOPE = "src/txn/"


def check_interproc_bypass(relpath: str, lines: list[str]) -> list[tuple]:
    if not relpath.startswith(INTERPROC_BYPASS_SCOPE):
        return []
    findings = []
    for lineno, line in enumerate(lines, 1):
        if INTERPROC_BYPASS.search(line):
            findings.append(
                ("interproc-bypass", relpath, lineno, line.strip(),
                 "direct AnalysisCache summary lookup in scheduler/validation "
                 "code: per-contract summaries ignore CALL targets and are "
                 "not state-invalidated; go through "
                 "InterprocCache::global().get(db, addr, cache)"))
    return findings


# ---------------------------------------------------------------------------
# Self-test: one positive and one negative fixture per rule, so a regex edit
# that silently disables a rule fails the `srbb_lint_selftest` ctest.
# ---------------------------------------------------------------------------

SELFTEST_FIXTURES = [
    # (rule, relpath, source, expect_finding)
    ("nondet-source", "src/consensus/x.cpp",
     "int f() { return rand(); }\n", True),
    ("nondet-source", "src/consensus/x.cpp",
     "int f() { return my_rand_value; }\n", False),
    ("nondet-source", "src/consensus/x.cpp",
     "// rand() in a comment\nint f() { return 1; }\n", False),
    ("unordered-iter", "src/state/x.cpp",
     "std::unordered_map<int, int> m;\n"
     "void f() { for (auto& kv : m) { use(kv); } }\n", True),
    ("unordered-iter", "src/state/x.cpp",
     "std::map<int, int> m;\n"
     "void f() { for (auto& kv : m) { use(kv); } }\n", False),
    ("pointer-key", "src/state/x.hpp",
     "std::map<Node*, int> weights;\n", True),
    ("pointer-key", "src/state/x.hpp",
     "std::map<NodeId, int> weights;\n", False),
    ("uninit-field", "src/txn/x.hpp",
     "struct Wire {\n  std::uint64_t nonce;\n};\n"
     "void encode(const Wire&);\n", True),
    ("uninit-field", "src/txn/x.hpp",
     "struct Wire {\n  std::uint64_t nonce = 0;\n};\n"
     "void encode(const Wire&);\n", False),
    ("float-in-consensus", "src/evm/x.cpp",
     "double price = 0.5;\n", True),
    ("float-in-consensus", "src/evm/x.cpp",
     "std::uint64_t price = 5;\n", False),
    # Outside the consensus directories doubles are fine (measurement code).
    ("float-in-consensus", "src/diablo/x.cpp",
     "double latency_ms = 0.5;\n", False),
    ("analysis-cache-mutation", "src/txn/x.cpp",
     "void f() { evm::analysis::AnalysisCache::global().clear(); }\n", True),
    ("analysis-cache-mutation", "src/txn/x.cpp",
     "void f(Cfg& c) { c.hint_cache->set_metrics(&registry); }\n", True),
    ("analysis-cache-mutation", "src/txn/x.cpp",
     "void f(Cfg& c) { c.hint_cache->get(keccak, code); }\n", False),
    # Inside the analyzer layer the cache may manage itself.
    ("analysis-cache-mutation", "src/evm/analysis/cache.cpp",
     "void AnalysisCache::reset() { analysis_cache_impl.clear(); }\n", False),
    ("interproc-bypass", "src/txn/x.cpp",
     "auto a = config.analysis_cache->get(db.code_keccak(to), code);\n", True),
    ("interproc-bypass", "src/txn/x.cpp",
     "auto a = evm::analysis::AnalysisCache::global().get(h, code);\n", True),
    ("interproc-bypass", "src/txn/x.cpp",
     "auto a = cache.get(code_keccak, code);\n", True),
    # The sanctioned wrapper: state-keyed, edge-revalidating.
    ("interproc-bypass", "src/txn/x.cpp",
     "auto s = evm::analysis::InterprocCache::global().get(db, to, cache);\n",
     False),
    # Outside src/txn/ the analyzer layer composes from raw summaries.
    ("interproc-bypass", "src/evm/analysis/interproc.cpp",
     "auto a = analyses.get(code_keccak, code);\n", False),
]


def run_file_checks(relpath: str, text: str) -> list[tuple]:
    stripped = strip_comments_and_strings(text)
    lines = stripped.splitlines()
    findings = []
    findings += check_nondet_source(relpath, lines)
    findings += check_unordered_iter(relpath, stripped,
                                     collect_unordered_names(stripped))
    findings += check_pointer_key(relpath, lines)
    findings += check_uninit_field(relpath, stripped)
    findings += check_float_in_consensus(relpath, lines)
    findings += check_analysis_cache_mutation(relpath, lines)
    findings += check_interproc_bypass(relpath, lines)
    return findings


def self_test() -> int:
    failures = 0
    for i, (rule, relpath, source, expect) in enumerate(SELFTEST_FIXTURES):
        hits = [f for f in run_file_checks(relpath, source) if f[0] == rule]
        if bool(hits) != expect:
            print(f"self-test fixture #{i} ({rule}): expected "
                  f"{'a finding' if expect else 'no finding'}, got "
                  f"{len(hits)}")
            failures += 1
    print(f"srbb_lint --self-test: {len(SELFTEST_FIXTURES)} fixtures, "
          f"{failures} failure(s)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------


def load_allowlist(path: Path) -> list[dict]:
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, justification = line.partition("#")
        parts = body.strip().split(None, 2)
        if len(parts) != 3 or not justification.strip():
            print(f"allowlist:{lineno}: malformed entry (want: "
                  f"<rule> <path> <line-substring>  # justification)")
            sys.exit(2)
        rule, relpath, needle = parts
        if len(needle) >= 2 and needle[0] == needle[-1] and needle[0] in "\"'":
            needle = needle[1:-1]
        entries.append({
            "rule": rule, "path": relpath, "needle": needle,
            "justification": justification.strip(), "lineno": lineno,
            "used": False,
        })
    return entries


def is_allowed(finding: tuple, allowlist: list[dict]) -> bool:
    rule, relpath, _lineno, line, _why = finding
    for entry in allowlist:
        if (entry["rule"] == rule and entry["path"] == relpath
                and entry["needle"] in line):
            entry["used"] = True
            return True
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root (containing src/)")
    parser.add_argument("--no-allowlist", action="store_true",
                        help="report every finding, audited or not")
    parser.add_argument("--list", action="store_true",
                        help="list findings without failing (triage mode)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in rule fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    src = args.root / "src"
    if not src.is_dir():
        print(f"srbb_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    files = sorted(p for p in src.rglob("*") if p.suffix in SRC_EXTENSIONS)
    stripped_by_file = {
        p: strip_comments_and_strings(p.read_text(errors="replace"))
        for p in files
    }

    # unordered-container member names are collected globally so iteration
    # over a member declared in another header (e.g. Account::storage) is
    # still caught at the use site.
    unordered_names: set[str] = set()
    for stripped in stripped_by_file.values():
        unordered_names |= collect_unordered_names(stripped)

    findings = []
    for path in files:
        relpath = path.relative_to(args.root).as_posix()
        stripped = stripped_by_file[path]
        lines = stripped.splitlines()
        findings += check_nondet_source(relpath, lines)
        findings += check_unordered_iter(relpath, stripped, unordered_names)
        findings += check_pointer_key(relpath, lines)
        findings += check_uninit_field(relpath, stripped)
        findings += check_float_in_consensus(relpath, lines)
        findings += check_analysis_cache_mutation(relpath, lines)
        findings += check_interproc_bypass(relpath, lines)

    allowlist = ([] if args.no_allowlist
                 else load_allowlist(args.root / "tools/lint_allowlist.txt"))
    reported = [f for f in findings if not is_allowed(f, allowlist)]
    stale = [e for e in allowlist if not e["used"]]

    for rule, relpath, lineno, line, why in reported:
        print(f"{relpath}:{lineno}: [{rule}] {line}")
        print(f"    {why}")
    for entry in stale:
        print(f"tools/lint_allowlist.txt:{entry['lineno']}: stale entry "
              f"(matches nothing): {entry['rule']} {entry['path']} "
              f"{entry['needle']}")

    suppressed = len(findings) - len(reported)
    print(f"srbb_lint: {len(files)} files, {len(reported)} finding(s), "
          f"{suppressed} allowlisted, {len(stale)} stale allowlist entr(y/ies)")
    if args.list:
        return 0
    return 1 if reported or stale else 0


if __name__ == "__main__":
    sys.exit(main())
