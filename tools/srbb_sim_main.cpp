// srbb_sim — command-line front end for the experiment runner.
//
//   srbb_sim --system srbb --workload fifa --scale 0.05
//   srbb_sim --system quorum --workload constant --tps 200 --duration 30
//   srbb_sim --system srbb --byzantine 1 --flood 500 --rpm
//            --workload constant --tps 1000 --duration 5
//   srbb_sim --trace my_trace.csv --system srbb
//
// Prints the Figure-2-style row plus congestion diagnostics for one run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chains/presets.hpp"
#include "diablo/report.hpp"
#include "diablo/runner.hpp"

using namespace srbb;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --system NAME      srbb | evmdbft | algorand | avalanche | diem |\n"
      "                     ethereum | quorum | solana        (default srbb)\n"
      "  --workload NAME    nasdaq | uber | fifa | constant   (default constant)\n"
      "  --tps X            constant-workload rate            (default 100)\n"
      "  --duration S       constant-workload seconds         (default 30)\n"
      "  --trace FILE       load a CSV trace instead (see diablo/workload.hpp)\n"
      "  --validators N     committee size                    (default 200)\n"
      "  --scale F          shrink validators/rates by F      (default 1.0)\n"
      "  --clients N        client nodes                      (default 10)\n"
      "  --drain S          observation tail after last send  (default 120)\n"
      "  --seed S           simulation seed                   (default 1)\n"
      "  --rpm              enable the reward-penalty mechanism\n"
      "  --byzantine K      flooding Byzantine validators     (default 0)\n"
      "  --flood M          invalid txs per Byzantine block   (default 0)\n"
      "  --resend S         client retry timeout, 0 = off     (default 0)\n"
      "  --single-region    Sydney-only latency model\n"
      "  --json             machine-readable result on stdout\n",
      argv0);
}

bool parse_system(const std::string& name, diablo::RunConfig& config) {
  if (name == "srbb") {
    config.kind = diablo::SystemKind::kSrbb;
    config.system_name = "SRBB";
    return true;
  }
  if (name == "evmdbft") {
    config.kind = diablo::SystemKind::kEvmDbft;
    config.system_name = "EVM+DBFT";
    return true;
  }
  for (const auto& preset : chains::all_modern_presets()) {
    std::string lower = preset.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) {
      config.kind = diablo::SystemKind::kModern;
      config.preset = preset;
      config.system_name = preset.name;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  diablo::RunConfig config;
  config.system_name = "SRBB";
  config.kind = diablo::SystemKind::kSrbb;
  config.validators = 200;
  config.latency = sim::LatencyModel::aws_global();

  std::string workload_name = "constant";
  std::string trace_file;
  double tps = 100.0;
  std::uint32_t duration = 30;
  double scale = 1.0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--system") {
      if (!parse_system(next(), config)) {
        std::fprintf(stderr, "unknown system\n");
        return 2;
      }
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--tps") {
      tps = std::atof(next());
    } else if (arg == "--duration") {
      duration = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--validators") {
      config.validators = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--clients") {
      config.clients = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--drain") {
      config.drain = seconds(static_cast<std::uint64_t>(std::atoi(next())));
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--rpm") {
      config.rpm = true;
    } else if (arg == "--byzantine") {
      config.byzantine = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--flood") {
      config.flood_invalid_per_block =
          static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--resend") {
      config.client_resend_timeout =
          seconds(static_cast<std::uint64_t>(std::atoi(next())));
    } else if (arg == "--single-region") {
      config.latency = sim::LatencyModel::single_region();
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (!trace_file.empty()) {
    std::ifstream in{trace_file};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto trace = diablo::from_csv(buffer.str());
    if (!trace) {
      std::fprintf(stderr, "bad trace: %s\n", trace.message().c_str());
      return 2;
    }
    config.workload = std::move(trace).take();
  } else if (workload_name == "nasdaq") {
    config.workload = diablo::WorkloadSpec::nasdaq();
  } else if (workload_name == "uber") {
    config.workload = diablo::WorkloadSpec::uber();
  } else if (workload_name == "fifa") {
    config.workload = diablo::WorkloadSpec::fifa();
  } else if (workload_name == "constant") {
    config.workload = diablo::WorkloadSpec::constant("constant", tps, duration);
  } else {
    std::fprintf(stderr, "unknown workload %s\n", workload_name.c_str());
    return 2;
  }

  const diablo::RunConfig scaled = diablo::scale_config(config, scale);
  if (!json) {
    std::printf("running %s on %s: %u validators, %llu txs, seed %llu...\n",
                scaled.system_name.c_str(), scaled.workload.name.c_str(),
                scaled.validators,
                static_cast<unsigned long long>(scaled.workload.total_txs()),
                static_cast<unsigned long long>(scaled.seed));
    std::fflush(stdout);
  }

  const diablo::RunResult result = diablo::run_experiment(scaled);
  if (json) {
    std::printf(
        "{\"system\":\"%s\",\"workload\":\"%s\",\"validators\":%u,"
        "\"sent\":%llu,\"committed\":%llu,\"commit_pct\":%.3f,"
        "\"throughput_tps\":%.3f,\"avg_latency_s\":%.4f,"
        "\"p50_latency_s\":%.4f,\"p95_latency_s\":%.4f,"
        "\"max_latency_s\":%.4f,\"eager_validations\":%llu,"
        "\"gossip_tx_messages\":%llu,\"pool_drops\":%llu,"
        "\"invalid_discarded\":%llu,\"network_messages\":%llu,"
        "\"network_bytes\":%llu,\"crashed_nodes\":%llu,\"slashes\":%llu}\n",
        result.system.c_str(), result.workload.c_str(), scaled.validators,
        static_cast<unsigned long long>(result.sent),
        static_cast<unsigned long long>(result.committed), result.commit_pct,
        result.throughput_tps, result.avg_latency_s, result.p50_latency_s,
        result.p95_latency_s, result.max_latency_s,
        static_cast<unsigned long long>(result.eager_validations),
        static_cast<unsigned long long>(result.gossip_tx_messages),
        static_cast<unsigned long long>(result.pool_drops),
        static_cast<unsigned long long>(result.invalid_discarded),
        static_cast<unsigned long long>(result.network_messages),
        static_cast<unsigned long long>(result.network_bytes),
        static_cast<unsigned long long>(result.crashed_nodes),
        static_cast<unsigned long long>(result.slash_events));
    return 0;
  }
  std::printf("\n%s\n%s\n\n%s\n", diablo::format_header().c_str(),
              diablo::format_row(result).c_str(),
              diablo::format_diagnostics(result).c_str());
  return 0;
}
