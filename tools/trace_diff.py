#!/usr/bin/env python3
"""Diff two SRBB commit-path traces (Chrome trace_event JSON).

The simulator is deterministic, so two traces of the same (workload, seed,
fault-plan) must be event-for-event identical; when a golden-trace test fails
this tool pinpoints *where* the runs diverged instead of just reporting a
fingerprint mismatch:

  python3 tools/trace_diff.py a.json b.json

Output:
  - per-category event-count deltas (which phase of the commit path changed),
  - per-event-name count deltas,
  - the first divergent event with both versions printed, plus surrounding
    context from each trace.

Exit status: 0 identical, 1 diverged, 2 usage/parse error.

`--self-test` runs a built-in check (registered as the ctest `trace_diff`)
that the differ flags known-different traces and accepts identical ones.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from collections import Counter
from pathlib import Path

CONTEXT = 3  # events shown around the first divergence


def load_events(path: Path) -> list[dict]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"trace_diff: cannot read {path}: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"trace_diff: {path} has no traceEvents array")
    return events


def event_key(event: dict) -> tuple:
    """Everything that identifies an event, in a stable comparable form."""
    args = event.get("args") or {}
    return (
        event.get("ts"),
        event.get("dur"),
        event.get("pid"),
        event.get("cat"),
        event.get("name"),
        tuple(sorted(args.items())),
    )


def format_event(event: dict) -> str:
    args = event.get("args") or {}
    arg_text = " ".join(f"{k}={v}" for k, v in sorted(args.items()))
    return (
        f"ts={event.get('ts'):>14} dur={event.get('dur'):>10} "
        f"node={event.get('pid'):>3} {event.get('cat')}/{event.get('name')} "
        f"{arg_text}".rstrip()
    )


def print_count_deltas(kind: str, field: str, a: list[dict],
                       b: list[dict]) -> bool:
    counts_a = Counter(e.get(field) for e in a)
    counts_b = Counter(e.get(field) for e in b)
    keys = sorted(set(counts_a) | set(counts_b), key=str)
    rows = [(k, counts_a.get(k, 0), counts_b.get(k, 0)) for k in keys
            if counts_a.get(k, 0) != counts_b.get(k, 0)]
    if not rows:
        return False
    print(f"{kind} count deltas (A vs B):")
    for key, in_a, in_b in rows:
        print(f"  {str(key):<24} {in_a:>8} -> {in_b:<8} ({in_b - in_a:+d})")
    return True


def first_divergence(a: list[dict], b: list[dict]) -> int | None:
    """Index of the first differing event, or None when one trace is a
    prefix of the other (length mismatch handled by the caller)."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if event_key(ea) != event_key(eb):
            return i
    return None


def print_context(label: str, events: list[dict], index: int) -> None:
    lo = max(0, index - CONTEXT)
    hi = min(len(events), index + CONTEXT + 1)
    print(f"  {label}:")
    for i in range(lo, hi):
        marker = ">>" if i == index else "  "
        print(f"  {marker} [{i}] {format_event(events[i])}")


def diff(path_a: Path, path_b: Path) -> int:
    a = load_events(path_a)
    b = load_events(path_b)
    if a == b:
        print(f"traces identical ({len(a)} events)")
        return 0

    print(f"traces differ: A={path_a} ({len(a)} events) "
          f"B={path_b} ({len(b)} events)")
    any_delta = print_count_deltas("category", "cat", a, b)
    any_delta |= print_count_deltas("event", "name", a, b)
    if not any_delta:
        print("same event multiset per name -- timing/order/args changed")

    index = first_divergence(a, b)
    if index is None:
        # One trace is a strict prefix of the other.
        index = min(len(a), len(b))
        longer_label, longer = ("A", a) if len(a) > len(b) else ("B", b)
        print(f"first divergence: trace {longer_label} continues at event "
              f"{index} where the other ends")
        print_context(longer_label, longer, index)
    else:
        print(f"first divergence at event {index}:")
        print_context("A", a, index)
        print_context("B", b, index)
    return 1


def self_test() -> int:
    base = [
        {"name": "pool.admit", "cat": "pool", "ph": "X", "ts": 1.5,
         "dur": 0.0, "pid": 0, "tid": 0, "args": {"tx": 7}},
        {"name": "consensus.decide", "cat": "consensus", "ph": "X",
         "ts": 2.0, "dur": 0.0, "pid": 1, "tid": 0, "args": {"index": 0}},
        {"name": "superblock.commit", "cat": "commit", "ph": "X", "ts": 3.0,
         "dur": 0.0, "pid": 1, "tid": 0, "args": {"index": 0, "valid": 1}},
    ]
    changed = json.loads(json.dumps(base))
    changed[1]["args"]["index"] = 9  # one arg differs
    shorter = base[:2]

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)

        def write(name: str, events: list[dict]) -> Path:
            path = tmpdir / name
            path.write_text(json.dumps({"traceEvents": events}))
            return path

        pa = write("a.json", base)
        pb = write("b.json", base)
        pc = write("c.json", changed)
        pd = write("d.json", shorter)

        failures = []
        if diff(pa, pb) != 0:
            failures.append("identical traces reported as divergent")
        if diff(pa, pc) != 1:
            failures.append("changed arg not detected")
        if first_divergence(load_events(pa), load_events(pc)) != 1:
            failures.append("first divergence index wrong")
        if diff(pa, pd) != 1:
            failures.append("prefix truncation not detected")

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        return 1
    print("trace_diff self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*", type=Path,
                        help="two Chrome trace_event JSON files")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in self test and exit")
    opts = parser.parse_args()
    if opts.self_test:
        return self_test()
    if len(opts.traces) != 2:
        parser.error("expected exactly two trace files (or --self-test)")
    return diff(opts.traces[0], opts.traces[1])


if __name__ == "__main__":
    sys.exit(main())
