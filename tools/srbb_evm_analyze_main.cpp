// srbb_evm_analyze — command-line front end for the EVM static analyzer
// (src/evm/analysis, docs/ANALYSIS.md).
//
//   srbb_evm_analyze --hex 6001600101            analyze inline hex
//   srbb_evm_analyze --file runtime.bin          analyze a binary file
//   srbb_evm_analyze --hex-file runtime.hex      analyze a hex text file
//   echo 6001600101 | srbb_evm_analyze           analyze hex from stdin
//   srbb_evm_analyze --json --hex 00             machine-readable CFG dump
//   srbb_evm_analyze --self-test                 analyze every shipped
//                                                contract; fail on any REJECT
//
// Exit code: 0 for kAccept/kUnknown, 2 for kReject, 1 for usage/IO errors.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "evm/analysis/analysis.hpp"
#include "evm/analysis/interproc.hpp"
#include "evm/contracts.hpp"
#include "state/statedb.hpp"

using namespace srbb;
using namespace srbb::evm::analysis;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --hex BYTES        analyze inline hex (0x prefix optional)\n"
      "  --file PATH        analyze raw binary bytecode from PATH\n"
      "  --hex-file PATH    analyze hex text from PATH\n"
      "  --json             machine-readable result + CFG dump on stdout\n"
      "  --self-test        analyze every shipped contract (runtime and\n"
      "                     deploy code); exit nonzero on any REJECT\n"
      "with no input option, hex is read from stdin\n",
      argv0);
}

bool parse_hex(const std::string& text, Bytes& out) {
  std::string cleaned;
  cleaned.reserve(text.size());
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    cleaned.push_back(c);
  }
  if (cleaned.rfind("0x", 0) == 0 || cleaned.rfind("0X", 0) == 0) {
    cleaned = cleaned.substr(2);
  }
  const auto decoded = from_hex(cleaned);
  if (!decoded) return false;
  out = *decoded;
  return true;
}

void print_human(const AnalysisResult& r, std::size_t code_size) {
  std::printf("verdict:       %s\n", to_string(r.verdict));
  if (r.verdict == Verdict::kReject) {
    std::printf("reject reason: %s at pc %u\n", to_string(r.reject_reason),
                r.reject_pc);
  }
  if (r.min_gas == AnalysisResult::kNoSuccessfulPath) {
    std::printf("min gas:       unreachable (no successful path)\n");
  } else {
    std::printf("min gas:       %llu\n",
                static_cast<unsigned long long>(r.min_gas));
  }
  std::size_t jumpdests = 0;
  for (const bool b : r.jumpdests) jumpdests += b ? 1u : 0u;
  std::printf("code size:     %zu bytes, %zu jumpdests\n", code_size,
              jumpdests);
  std::printf("cfg:           %zu blocks (%u reachable), %u unknown jumps\n",
              r.cfg.blocks.size(), r.reachable_blocks, r.unknown_jump_blocks);
  if (r.reachable_invalid) {
    std::printf("warning:       INVALID/undefined opcode is reachable\n");
  }
  if (r.reachable_truncated_push) {
    std::printf("warning:       truncated PUSH is reachable\n");
  }
  std::printf("fingerprint:   %016llx\n",
              static_cast<unsigned long long>(r.fingerprint()));
  const StorageSummary& s = r.storage;
  std::printf("rw-set:        %s (%zu reads, %zu writes, %zu balance reads)%s\n",
              s.top ? "TOP (may touch anything)" : "precise", s.reads.size(),
              s.writes.size(), s.balance_reads.size(),
              s.budget_exhausted ? " [budget exhausted]" : "");
  for (const SymExpr& e : s.reads) {
    std::printf("  read    %s\n", to_string(e).c_str());
  }
  for (const SymExpr& e : s.writes) {
    std::printf("  write   %s\n", to_string(e).c_str());
  }
  for (const SymExpr& e : s.balance_reads) {
    std::printf("  balance %s\n", to_string(e).c_str());
  }
  const FrameSummary frame = infer_frame_summary(r.cfg);
  std::printf("call graph:    %zu site(s)%s\n", frame.sites.size(),
              frame.sites_overflow ? " [sites overflow: composition bails]"
                                   : "");
  for (const CallSite& site : frame.sites) {
    std::printf("  pc %-5u %-13s target=%s value=%s args=%s%s\n", site.pc,
                to_string(site.kind), to_string(site.target).c_str(),
                to_string(site.value).c_str(),
                site.args_tracked ? "tracked" : "untracked",
                site.guarded ? " guarded" : "");
  }
  std::printf("\nblocks:\n");
  for (std::size_t i = 0; i < r.cfg.blocks.size(); ++i) {
    const BasicBlock& b = r.cfg.blocks[i];
    const BlockFacts& f = r.facts[i];
    std::printf("  #%-3u [%4u,%4u) %-12s gas=%-6llu need=%u delta=%+d", b.id,
                b.start_pc, b.end_pc, to_string(b.terminator),
                static_cast<unsigned long long>(b.static_gas), b.needed,
                b.delta);
    if (b.jump_resolved) {
      std::printf(" ->pc %u%s", b.jump_target,
                  b.jump_target_invalid ? " (invalid!)" : "");
    } else if (b.unknown_jump) {
      std::printf(" ->?");
    }
    if (f.reachable) {
      std::printf("  entry=[%u,%u]", f.entry_lo, f.entry_hi);
      if (f.must_underflow) {
        std::printf(" MUST-UNDERFLOW");
      } else if (f.may_underflow) {
        std::printf(" may-underflow");
      }
      if (f.must_overflow) {
        std::printf(" MUST-OVERFLOW");
      } else if (f.may_overflow) {
        std::printf(" may-overflow");
      }
    } else {
      std::printf("  unreachable");
    }
    std::printf("\n");
  }
}

void print_json(const AnalysisResult& r, std::size_t code_size) {
  std::size_t jumpdests = 0;
  for (const bool b : r.jumpdests) jumpdests += b ? 1u : 0u;
  std::printf("{\n  \"verdict\": \"%s\",\n", to_string(r.verdict));
  std::printf("  \"reject_reason\": \"%s\",\n", to_string(r.reject_reason));
  std::printf("  \"reject_pc\": %u,\n", r.reject_pc);
  if (r.min_gas == AnalysisResult::kNoSuccessfulPath) {
    std::printf("  \"min_gas\": null,\n");
  } else {
    std::printf("  \"min_gas\": %llu,\n",
                static_cast<unsigned long long>(r.min_gas));
  }
  std::printf("  \"code_size\": %zu,\n  \"jumpdests\": %zu,\n", code_size,
              jumpdests);
  std::printf("  \"reachable_blocks\": %u,\n", r.reachable_blocks);
  std::printf("  \"unknown_jump_blocks\": %u,\n", r.unknown_jump_blocks);
  std::printf("  \"reachable_invalid\": %s,\n",
              r.reachable_invalid ? "true" : "false");
  std::printf("  \"reachable_truncated_push\": %s,\n",
              r.reachable_truncated_push ? "true" : "false");
  std::printf("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(r.fingerprint()));
  const StorageSummary& s = r.storage;
  std::printf("  \"rwset\": {\"top\": %s, \"budget_exhausted\": %s, ",
              s.top ? "true" : "false",
              s.budget_exhausted ? "true" : "false");
  std::printf("\"digest\": \"%016llx\",\n",
              static_cast<unsigned long long>(s.digest()));
  auto dump_exprs = [](const char* key, const std::vector<SymExpr>& exprs,
                       const char* tail) {
    std::printf("    \"%s\": [", key);
    for (std::size_t i = 0; i < exprs.size(); ++i) {
      std::printf("%s\"%s\"", i ? ", " : "", to_string(exprs[i]).c_str());
    }
    std::printf("]%s\n", tail);
  };
  dump_exprs("reads", s.reads, ",");
  dump_exprs("writes", s.writes, ",");
  dump_exprs("balance_reads", s.balance_reads, "},");
  const FrameSummary frame = infer_frame_summary(r.cfg);
  std::printf("  \"call_sites\": {\"overflow\": %s, \"sites\": [",
              frame.sites_overflow ? "true" : "false");
  for (std::size_t i = 0; i < frame.sites.size(); ++i) {
    const CallSite& site = frame.sites[i];
    std::printf(
        "%s\n    {\"pc\": %u, \"kind\": \"%s\", \"target\": \"%s\", "
        "\"value\": \"%s\", \"args_tracked\": %s, \"guarded\": %s}",
        i ? "," : "", site.pc, to_string(site.kind),
        to_string(site.target).c_str(), to_string(site.value).c_str(),
        site.args_tracked ? "true" : "false",
        site.guarded ? "true" : "false");
  }
  std::printf("%s]},\n", frame.sites.empty() ? "" : "\n  ");
  std::printf("  \"blocks\": [\n");
  for (std::size_t i = 0; i < r.cfg.blocks.size(); ++i) {
    const BasicBlock& b = r.cfg.blocks[i];
    const BlockFacts& f = r.facts[i];
    std::printf(
        "    {\"id\": %u, \"start_pc\": %u, \"end_pc\": %u, "
        "\"terminator\": \"%s\", \"static_gas\": %llu, \"needed\": %u, "
        "\"delta\": %d, \"peak\": %u, \"reachable\": %s",
        b.id, b.start_pc, b.end_pc, to_string(b.terminator),
        static_cast<unsigned long long>(b.static_gas), b.needed, b.delta,
        b.peak, f.reachable ? "true" : "false");
    if (b.jump_resolved) {
      std::printf(", \"jump_target\": %u, \"jump_target_invalid\": %s",
                  b.jump_target, b.jump_target_invalid ? "true" : "false");
    }
    if (b.unknown_jump) std::printf(", \"unknown_jump\": true");
    if (b.fallthrough) std::printf(", \"fallthrough\": %u", *b.fallthrough);
    if (b.jump_succ) std::printf(", \"jump_succ\": %u", *b.jump_succ);
    if (f.reachable) {
      std::printf(
          ", \"entry_lo\": %u, \"entry_hi\": %u, \"may_underflow\": %s, "
          "\"must_underflow\": %s, \"may_overflow\": %s, "
          "\"must_overflow\": %s",
          f.entry_lo, f.entry_hi, f.may_underflow ? "true" : "false",
          f.must_underflow ? "true" : "false",
          f.may_overflow ? "true" : "false",
          f.must_overflow ? "true" : "false");
    }
    std::printf("}%s\n", i + 1 < r.cfg.blocks.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

/// Analyze every shipped contract's runtime and deploy code. Any REJECT is a
/// bug: these contracts run in the diablo pipeline, so the analyzer must not
/// condemn them (runtime code is additionally expected to be fully proven,
/// and its storage rw-set must be precise — a ⊤ summary would silently
/// degrade the hinted scheduler to blind speculation for that contract).
int self_test() {
  struct Named {
    const char* name;
    const evm::Contract* contract;
  };
  const Named contracts[] = {
      {"counter", &evm::counter_contract()},
      {"exchange", &evm::exchange_contract()},
      {"mobility", &evm::mobility_contract()},
      {"ticketing", &evm::ticketing_contract()},
      {"staking", &evm::staking_contract()},
      {"token", &evm::token_contract()},
      {"kvstore", &evm::kvstore_contract()},
  };
  int failures = 0;
  for (const Named& entry : contracts) {
    for (const bool deploy : {false, true}) {
      const Bytes& code = deploy ? entry.contract->deploy_code
                                 : entry.contract->runtime_code;
      const AnalysisResult r = analyze(BytesView{code});
      const char* which = deploy ? "deploy" : "runtime";
      std::printf("%-10s %-8s %-8s min_gas=", entry.name, which,
                  to_string(r.verdict));
      if (r.min_gas == AnalysisResult::kNoSuccessfulPath) {
        std::printf("unreachable");
      } else {
        std::printf("%llu", static_cast<unsigned long long>(r.min_gas));
      }
      std::printf(" blocks=%zu rwset=%s/%zur/%zuw\n", r.cfg.blocks.size(),
                  r.storage.top ? "TOP" : "precise", r.storage.reads.size(),
                  r.storage.writes.size());
      if (r.verdict == Verdict::kReject) {
        std::printf("FAIL: %s %s code rejected: %s at pc %u\n", entry.name,
                    which, to_string(r.reject_reason), r.reject_pc);
        ++failures;
      }
      if (r.min_gas == AnalysisResult::kNoSuccessfulPath) {
        std::printf("FAIL: %s %s code has no successful path\n", entry.name,
                    which);
        ++failures;
      }
      if (!deploy && (r.storage.top || r.storage.budget_exhausted)) {
        std::printf("FAIL: %s runtime storage summary is not precise\n",
                    entry.name);
        ++failures;
      }
    }
  }
  // Interprocedural leg: the shipped router must compose precisely over
  // kvstore + token (all three edges resolved, rw side usable, and the
  // composed min-gas strictly refining the intraprocedural bound).
  // Non-precompile addresses (low addresses would resolve as precompile
  // edges and skip composition).
  Address kvstore_at;
  kvstore_at[0] = 0xAA;
  kvstore_at[19] = 0x01;
  Address token_at;
  token_at[0] = 0xAA;
  token_at[19] = 0x02;
  Address router_at;
  router_at[0] = 0xAA;
  router_at[19] = 0x03;
  const evm::Contract router = evm::router_contract(kvstore_at, token_at);
  state::StateDB db;
  db.set_code(kvstore_at, evm::kvstore_contract().runtime_code);
  db.set_code(token_at, evm::token_contract().runtime_code);
  db.set_code(router_at, router.runtime_code);
  db.commit();
  AnalysisCache analyses;
  const ComposedSummary composed = compose_summary(db, router_at, analyses);
  std::size_t keys = 0;
  for (const AccountAccess& aa : composed.accesses) {
    keys += aa.reads.size() + aa.writes.size();
  }
  std::printf(
      "router     composed %-8s min_gas=%llu frames=%u edges=%zu "
      "accounts=%zu keys=%zu\n",
      composed.top ? "TOP" : "precise",
      static_cast<unsigned long long>(composed.min_gas), composed.frames,
      composed.edges.size(), composed.accesses.size(), keys);
  for (const CallEdge& edge : composed.edges) {
    std::printf("  edge pc=%u depth=%u %s -> %02x..%02x\n", edge.pc,
                edge.depth, to_string(edge.kind), edge.callee[0],
                edge.callee[19]);
  }
  if (composed.top || composed.bailout != ComposeBailout::kNone) {
    std::printf("FAIL: router composition bailed (%s)\n",
                to_string(composed.bailout));
    ++failures;
  }
  if (composed.edges.size() != 3 || composed.unknown_target_sites != 0) {
    std::printf("FAIL: router call graph not fully resolved\n");
    ++failures;
  }
  const auto intra = analyses.get(db.code_keccak(router_at),
                                  db.code(router_at));
  if (composed.min_gas <= intra->min_gas ||
      composed.min_gas == AnalysisResult::kNoSuccessfulPath) {
    std::printf("FAIL: composed min-gas does not refine the frame bound\n");
    ++failures;
  }

  if (failures > 0) {
    std::printf("self-test: %d failure(s)\n", failures);
    return 1;
  }
  std::printf(
      "self-test: all shipped contracts pass analysis; router composes\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  Bytes code;
  bool have_code = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      return self_test();
    } else if (arg == "--hex") {
      if (!parse_hex(next(), code)) {
        std::fprintf(stderr, "invalid hex input\n");
        return 1;
      }
      have_code = true;
    } else if (arg == "--file") {
      std::ifstream in{next(), std::ios::binary};
      if (!in) {
        std::fprintf(stderr, "cannot open file\n");
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string data = buf.str();
      code.assign(data.begin(), data.end());
      have_code = true;
    } else if (arg == "--hex-file") {
      std::ifstream in{next()};
      if (!in) {
        std::fprintf(stderr, "cannot open file\n");
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      if (!parse_hex(buf.str(), code)) {
        std::fprintf(stderr, "invalid hex in file\n");
        return 1;
      }
      have_code = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  if (!have_code) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    if (!parse_hex(buf.str(), code)) {
      std::fprintf(stderr, "invalid hex on stdin\n");
      return 1;
    }
  }

  const AnalysisResult result = analyze(BytesView{code});
  if (json) {
    print_json(result, code.size());
  } else {
    print_human(result, code.size());
  }
  return result.verdict == Verdict::kReject ? 2 : 0;
}
