#!/usr/bin/env bash
# Chaos soak: sweep the chaos suite (tests/test_chaos.cpp) across fault-seed
# ranges. Every run is a pure function of its seeds, so a failure reported
# here is reproducible with the same SRBB_CHAOS_SEED_BASE/SRBB_CHAOS_SEEDS
# pair (add SRBB_CHAOS_DEBUG=1 for the per-validator state dump; see
# docs/FAULTS.md §4).
#
# Usage: tools/chaos_soak.sh [--ci] [build-dir]   (default: build)
#   --ci   fixed 12-seed subset across three bases — the fast CI leg
#
# Without --ci, sweeps SRBB_CHAOS_SEEDS seeds (default 40) starting at
# SRBB_CHAOS_SEED_BASE (default 1).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
ci=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --ci) ci=1 ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-$repo_root/build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$build_dir" -j "$(nproc)" --target test_chaos

run_range() {
  local base="$1" count="$2"
  echo "== chaos sweep: seeds [$base, $((base + count)))"
  SRBB_CHAOS_SEED_BASE="$base" SRBB_CHAOS_SEEDS="$count" \
    "$build_dir/tests/test_chaos"
}

run_churn() {
  # Churn leg: the adaptive-membership scenarios (ChaosChurn.*) plus the
  # env-gated 30%-offline soak (ChaosChurnSoak.*, 13 validators, 20 simulated
  # seconds per seed — too heavy for the default ctest run, cheap here).
  local base="$1" count="$2"
  echo "== churn sweep: seeds [$base, $((base + count)))"
  SRBB_CHURN_SOAK=1 SRBB_CHAOS_SEED_BASE="$base" SRBB_CHAOS_SEEDS="$count" \
    "$build_dir/tests/test_chaos" --gtest_filter='ChaosChurn*'
}

if [ "$ci" -eq 1 ]; then
  # Pinned subset: three bases x 4 seeds keeps the leg under a minute while
  # still covering distinct randomized plans every run.
  for base in 1 100 200; do
    run_range "$base" 4
  done
  run_churn 1 4
else
  run_range "${SRBB_CHAOS_SEED_BASE:-1}" "${SRBB_CHAOS_SEEDS:-40}"
  run_churn "${SRBB_CHAOS_SEED_BASE:-1}" "${SRBB_CHAOS_SEEDS:-8}"
fi
echo "chaos soak: all sweeps passed"
