#!/usr/bin/env bash
# clang-tidy gate over src/ using the curated profile in .clang-tidy.
#
#   tools/clang_tidy_check.sh [build-dir]
#
# Configures a compile-commands build (default: build-tidy/) if the database
# is missing, then runs clang-tidy on every src/ translation unit. Exits 0
# with a notice when clang-tidy is not installed, so local runs in minimal
# containers stay green — CI installs it and gets the real gate.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "clang_tidy_check: clang-tidy not installed; skipping (CI runs it)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "clang_tidy_check: ${#SOURCES[@]} translation units, $(${TIDY} --version | head -1)"

FAILED=0
for tu in "${SOURCES[@]}"; do
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "${tu}"; then
    FAILED=1
  fi
done

if [[ "${FAILED}" -ne 0 ]]; then
  echo "clang_tidy_check: findings above must be fixed or NOLINT'ed"
  exit 1
fi
echo "clang_tidy_check: clean"
