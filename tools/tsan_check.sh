#!/usr/bin/env bash
# CI gate for the optimistic parallel execution path: build with
# -DSRBB_SANITIZE=thread and run the concurrency-sensitive tests under TSan
# so data races in the overlay/commit pipeline are caught mechanically.
#
# Usage: tools/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DSRBB_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
      --target test_parallel_executor test_thread_pool test_bounded_queue \
               test_oracle test_chaos test_validation_pipeline \
               test_batch_verify test_rwset test_reliability \
               test_state_backend test_interproc
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
      -R 'ParallelExecutor|ParallelOracle|OverlayState|ThreadPool|BoundedQueue|ChaosParallel|ChaosChurn|ValidationPipeline|BatchVerify|HintedExecutor|RwSetMetrics|Reliability|Membership|QuorumParams|StateBackend|LogBackend|DeferredRoot|Interproc'
