#!/usr/bin/env python3
"""Line-coverage ratchet for src/ (no external deps, plain gcov).

Usage, after building with -DSRBB_COVERAGE=ON and running ctest:

  python3 tools/coverage_check.py --build build-cov          # enforce
  python3 tools/coverage_check.py --build build-cov --update # raise ratchet

Walks the build tree for .gcda files, asks gcov for JSON intermediate
output, and aggregates executable/executed lines per source file under src/
(headers included, unioned across the translation units that saw them).
The resulting percentage must not fall below tools/coverage_ratchet.txt;
--update rewrites the ratchet to the measured value (only upward).

Coverage may only ratchet up: a PR that lowers it either adds tests or
consciously lowers the number in the ratchet file with a review-visible diff.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RATCHET = REPO / "tools" / "coverage_ratchet.txt"
# Headroom for environment noise (inlining/defaulted-function attribution
# differs slightly across gcc point releases).
TOLERANCE = 0.5


def gcov_json(gcda: Path, workdir: Path) -> list[dict]:
    """Run gcov on one .gcda, return the parsed per-file records."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", str(gcda)],
        cwd=workdir, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"coverage_check: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return []
    records = []
    # --stdout emits one JSON document per line (one per .gcno processed).
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def collect(build_dir: Path) -> tuple[int, int, dict]:
    """(covered, total, per-file dict) over src/ lines."""
    gcdas = sorted(p.resolve() for p in build_dir.rglob("*.gcda"))
    if not gcdas:
        raise SystemExit(
            f"coverage_check: no .gcda files under {build_dir} — build with "
            "-DSRBB_COVERAGE=ON and run ctest first")
    src_root = (REPO / "src").resolve()
    # file -> {line -> hit_anywhere}
    lines: dict[str, dict[int, bool]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        for gcda in gcdas:
            for record in gcov_json(gcda, workdir):
                for file_rec in record.get("files", []):
                    path = Path(file_rec.get("file", ""))
                    if not path.is_absolute():
                        path = (REPO / path).resolve()
                    try:
                        rel = path.resolve().relative_to(src_root)
                    except ValueError:
                        continue  # test/bench/third-party line, not src/
                    per_file = lines.setdefault(str(rel), {})
                    for line_rec in file_rec.get("lines", []):
                        number = line_rec.get("line_number")
                        hit = line_rec.get("count", 0) > 0
                        per_file[number] = per_file.get(number, False) or hit
    per_file_pct = {}
    covered = total = 0
    for rel, file_lines in sorted(lines.items()):
        file_total = len(file_lines)
        file_covered = sum(1 for hit in file_lines.values() if hit)
        covered += file_covered
        total += file_total
        per_file_pct[rel] = (file_covered, file_total)
    return covered, total, per_file_pct


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build", type=Path, required=True,
                        help="build directory (configured with SRBB_COVERAGE)")
    parser.add_argument("--update", action="store_true",
                        help="raise the ratchet to the measured value")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-file coverage")
    opts = parser.parse_args()

    covered, total, per_file = collect(opts.build)
    if total == 0:
        raise SystemExit("coverage_check: no src/ lines found in gcov output")
    pct = 100.0 * covered / total

    if opts.verbose:
        for rel, (file_covered, file_total) in sorted(per_file.items()):
            print(f"  {rel:<48} {100.0 * file_covered / file_total:6.1f}% "
                  f"({file_covered}/{file_total})")
    print(f"src/ line coverage: {pct:.2f}% ({covered}/{total} lines, "
          f"{len(per_file)} files)")

    ratchet = 0.0
    if RATCHET.exists():
        ratchet = float(RATCHET.read_text().split()[0])

    if opts.update:
        if pct > ratchet:
            RATCHET.write_text(f"{pct:.2f}\n")
            print(f"ratchet updated: {ratchet:.2f}% -> {pct:.2f}%")
        else:
            print(f"ratchet kept at {ratchet:.2f}% (measured {pct:.2f}%)")
        return 0

    floor = ratchet - TOLERANCE
    if pct < floor:
        print(f"FAIL: coverage {pct:.2f}% fell below the ratchet "
              f"{ratchet:.2f}% (tolerance {TOLERANCE}%).\n"
              f"Add tests, or lower tools/coverage_ratchet.txt explicitly "
              f"in a reviewed diff.", file=sys.stderr)
        return 1
    print(f"OK: ratchet {ratchet:.2f}% (tolerance {TOLERANCE}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
