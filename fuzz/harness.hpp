// Shared scaffolding for the fuzz entry points. Every harness defines
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size)
// so the same translation unit links against libFuzzer (Clang,
// -fsanitize=fuzzer) or against replay_driver.cpp, which feeds checked-in
// corpus files through the harness under plain ctest.
//
// Harness rules (docs/CORRECTNESS.md "Fuzzing"):
//  - deterministic: no clocks, no global RNG — the input bytes are the only
//    source of variation, so every corpus file replays bit-identically;
//  - property-checking: FUZZ_ASSERT aborts on violated round-trip /
//    conservation properties, which both libFuzzer and the replay driver
//    report as a crash on the offending input.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define FUZZ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
