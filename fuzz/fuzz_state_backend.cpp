// State-backend harness (docs/STATE.md), two modes keyed on the first byte:
//
//  Mode A (even): the remaining bytes drive an op stream applied identically
//  to a seed-configuration StateDB and a backend-mode StateDB with a tiny
//  resident cache (constant fault/evict churn). Properties: bit-identical
//  state_root() at every commit, and the incremental MPT root equals the
//  from-scratch rebuild at the end.
//
//  Mode B (odd): the remaining bytes are written verbatim to disk and opened
//  as a LogBackend. Properties: recovery is total (no crash on arbitrary
//  bytes), truncates to a valid prefix (second open drops nothing and serves
//  identical records), and the recovered log accepts appends that survive a
//  further reopen.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.hpp"
#include "state/log_backend.hpp"
#include "state/statedb.hpp"

using namespace srbb;
using namespace srbb::state;

namespace {

struct ByteStream {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool done() const { return pos >= size; }
  std::uint8_t next() { return done() ? 0 : data[pos++]; }
};

Address addr_of(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

Hash32 slot_of(std::uint8_t tag) {
  Hash32 h;
  h[31] = tag;
  return h;
}

void check_roots(const StateDB& a, const StateDB& b) {
  FUZZ_ASSERT(a.state_root() == b.state_root());
  FUZZ_ASSERT(a.account_count() == b.account_count());
}

void run_op_differential(ByteStream in) {
  StateDB reference;
  StateConfig cfg;
  cfg.snapshot_capacity = 2;
  cfg.storage_trie_cache = 1;
  cfg.trie_node_cache_limit = 32;
  StateDB backed{cfg, std::make_shared<MemoryBackend>()};
  StateDB* dbs[] = {&reference, &backed};

  std::vector<StateView::Snapshot> snaps_ref;
  std::vector<StateView::Snapshot> snaps_backed;
  while (!in.done()) {
    const std::uint8_t op = in.next() % 8;
    const Address addr = addr_of(in.next() % 6);
    switch (op) {
      case 0: {
        const U256 delta{std::uint64_t{1} + in.next()};
        for (StateDB* db : dbs) db->add_balance(addr, delta);
        break;
      }
      case 1:
        for (StateDB* db : dbs) db->increment_nonce(addr);
        break;
      case 2: {
        const Hash32 slot = slot_of(in.next() % 4);
        const U256 value{std::uint64_t{in.next() % 4}};  // zero clears
        for (StateDB* db : dbs) db->set_storage(addr, slot, value);
        break;
      }
      case 3: {
        Bytes code(in.next() % 8);
        for (auto& b : code) b = in.next();
        for (StateDB* db : dbs) db->set_code(addr, code);
        break;
      }
      case 4:
        for (StateDB* db : dbs) db->delete_account(addr);
        break;
      case 5:
        snaps_ref.push_back(reference.snapshot());
        snaps_backed.push_back(backed.snapshot());
        break;
      case 6:
        if (!snaps_ref.empty()) {
          reference.revert_to(snaps_ref.back());
          backed.revert_to(snaps_backed.back());
          snaps_ref.pop_back();
          snaps_backed.pop_back();
        }
        break;
      default:
        snaps_ref.clear();
        snaps_backed.clear();
        for (StateDB* db : dbs) db->commit();
        check_roots(reference, backed);
        break;
    }
  }
  snaps_ref.clear();
  snaps_backed.clear();
  for (StateDB* db : dbs) db->commit();
  check_roots(reference, backed);
  FUZZ_ASSERT(backed.state_root_mpt() == reference.state_root_mpt());
  FUZZ_ASSERT(backed.state_root_mpt() == backed.state_root_mpt_full());
}

void run_log_recovery(const std::uint8_t* data, std::size_t size) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("srbb_fuzz_state_backend_" +
                             std::to_string(::getpid()) + ".log"))
                               .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    FUZZ_ASSERT(f != nullptr);
    if (size > 0) FUZZ_ASSERT(std::fwrite(data, 1, size, f) == size);
    std::fclose(f);
  }

  std::vector<Address> keys;
  std::vector<Bytes> values;
  {
    // Arbitrary bytes: recovery must terminate and truncate to a valid
    // prefix without crashing.
    LogBackend first{path};
    keys = first.keys();
    for (const Address& key : keys) {
      const std::optional<Bytes> value = first.get(key);
      FUZZ_ASSERT(value.has_value());
      values.push_back(*value);
    }
    FUZZ_ASSERT(first.file_bytes() <= size);
  }
  {
    // Idempotent: the truncated file is fully valid, so a reopen drops
    // nothing and serves byte-identical records.
    LogBackend second{path};
    FUZZ_ASSERT(second.stats().torn_bytes_dropped == 0);
    FUZZ_ASSERT(second.keys() == keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      FUZZ_ASSERT(second.get(keys[i]) == values[i]);
    }
    // The recovered log is appendable.
    const Bytes record{0x01, 0x02, 0x03};
    second.put(addr_of(0xAB), record);
    second.flush();
  }
  {
    LogBackend third{path};
    FUZZ_ASSERT(third.stats().torn_bytes_dropped == 0);
    FUZZ_ASSERT(third.get(addr_of(0xAB)) == Bytes({0x01, 0x02, 0x03}));
  }
  std::filesystem::remove(path);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > 4096) return 0;
  if (data[0] % 2 == 0) {
    run_op_differential(ByteStream{data + 1, size - 1});
  } else {
    run_log_recovery(data + 1, size - 1);
  }
  return 0;
}
