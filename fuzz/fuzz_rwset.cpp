// Rw-set inference harness: the storage-summary soundness contract
// (docs/ANALYSIS.md §rw-sets) over arbitrary bytecode and calldata.
//
// Input layout: [0] = calldata length selector, then that many calldata
// bytes, then the contract bytecode. Properties:
//  - inference is total and deterministic (two runs, identical digests);
//  - a non-⊤ summary contains only resolvable symbolic keys (no silent
//    miss hiding inside the representation);
//  - predicted ⊇ observed: executing the code against an OverlayState, every
//    storage slot the frame actually reads/writes on its own account — and
//    every balance it reads — resolves out of the summary, unless the
//    summary is the explicit ⊤.
#include <algorithm>
#include <vector>

#include "evm/analysis/analysis.hpp"
#include "evm/interpreter.hpp"
#include "harness.hpp"
#include "state/overlay.hpp"
#include "state/statedb.hpp"

using namespace srbb;
using namespace srbb::evm;
using namespace srbb::evm::analysis;

namespace {

Address addr_of(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

bool contains_hash(const std::vector<Hash32>& sorted, const Hash32& h) {
  return std::binary_search(sorted.begin(), sorted.end(), h);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const std::size_t cd_len = data[0] % 65;  // up to 64 bytes of calldata
  if (size < 1 + cd_len) return 0;
  const Bytes calldata{data + 1, data + 1 + cd_len};
  const std::size_t code_len = std::min<std::size_t>(size - 1 - cd_len, 16384);
  const Bytes code{data + 1 + cd_len, data + 1 + cd_len + code_len};

  // Determinism: the pass must be a pure function of the code.
  const AnalysisResult first = analyze(BytesView{code});
  const AnalysisResult second = analyze(BytesView{code});
  const StorageSummary& sum = first.storage;
  FUZZ_ASSERT(sum.digest() == second.storage.digest());
  FUZZ_ASSERT(sum.top == second.storage.top);
  FUZZ_ASSERT(first.fingerprint() == second.fingerprint());

  const Address self = addr_of(0xFC);
  const Address caller = addr_of(0xCA);

  // A non-⊤ summary must resolve completely: every bailout sets ⊤, so an
  // unresolvable key surviving here would be a silent miss.
  ResolveContext ctx;
  ctx.calldata = BytesView{calldata};
  ctx.caller = caller;
  ctx.self = self;
  std::vector<Hash32> pred_reads;
  std::vector<Hash32> pred_writes;
  std::vector<Address> pred_balances;
  if (!sum.top) {
    for (const SymExpr& e : sum.reads) {
      FUZZ_ASSERT(e.resolvable());
      pred_reads.push_back(resolve(e, ctx)->to_hash());
    }
    for (const SymExpr& e : sum.writes) {
      FUZZ_ASSERT(e.resolvable());
      const Hash32 slot = resolve(e, ctx)->to_hash();
      pred_writes.push_back(slot);
      pred_reads.push_back(slot);  // SSTORE reads the slot first
    }
    for (const SymExpr& e : sum.balance_reads) {
      FUZZ_ASSERT(e.resolvable());
      const Bytes word = resolve(e, ctx)->be_bytes();
      pred_balances.push_back(Address{BytesView{word.data() + 12, 20}});
    }
    std::sort(pred_reads.begin(), pred_reads.end());
    std::sort(pred_writes.begin(), pred_writes.end());
    std::sort(pred_balances.begin(), pred_balances.end());
  }

  // Execute the code against an overlay and compare observed accesses.
  state::StateDB db;
  db.add_balance(caller, U256{1'000'000});
  db.set_code(self, code);
  db.commit();
  state::OverlayState overlay{db};
  BlockContext block;
  TxContext tx;
  tx.origin = caller;
  Evm evm{overlay, block, tx};
  evm.set_validate_code(false);
  Message msg;
  msg.caller = caller;
  msg.to = self;
  msg.gas = 200'000;
  msg.data = calldata;
  (void)evm.execute(msg);

  if (sum.top) return 0;  // explicit "may touch anything": nothing to check
  for (const state::AccessKey& key : overlay.observed_writes().keys) {
    if (key.field == state::AccessField::kStorage && key.addr == self) {
      FUZZ_ASSERT(contains_hash(pred_writes, key.slot));
    }
  }
  for (const state::AccessKey& key : overlay.observed_reads().keys) {
    if (key.field == state::AccessField::kStorage && key.addr == self) {
      FUZZ_ASSERT(contains_hash(pred_reads, key.slot));
    }
    if (key.field == state::AccessField::kBalance) {
      FUZZ_ASSERT(std::binary_search(pred_balances.begin(),
                                     pred_balances.end(), key.addr));
    }
  }
  return 0;
}
