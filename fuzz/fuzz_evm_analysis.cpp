// Static-analyzer harness: analyze() must be total and deterministic over
// arbitrary bytes.
//  - never crash, assert, or hang (the 128 KiB cap bounds work);
//  - two runs over the same input produce identical fingerprints;
//  - the jumpdest bitmap matches code size and the standalone scanner;
//  - a kReject verdict always carries a concrete reason;
//  - the cache returns one immutable result per code blob.
#include "evm/analysis/analysis.hpp"
#include "evm/analysis/cache.hpp"
#include "harness.hpp"

using namespace srbb;
using namespace srbb::evm::analysis;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 65536) return 0;  // keep per-input work bounded for throughput
  const BytesView code{data, size};

  const AnalysisResult first = analyze(code);
  const AnalysisResult second = analyze(code);
  FUZZ_ASSERT(first.fingerprint() == second.fingerprint());
  FUZZ_ASSERT(first.verdict == second.verdict);
  FUZZ_ASSERT(first.min_gas == second.min_gas);

  FUZZ_ASSERT(first.jumpdests.size() == size);
  FUZZ_ASSERT(first.jumpdests == jumpdest_bitmap(code));

  if (first.verdict == Verdict::kReject) {
    FUZZ_ASSERT(first.reject_reason != RejectReason::kNone);
    FUZZ_ASSERT(first.reject_pc < size);
  } else {
    FUZZ_ASSERT(first.reject_reason == RejectReason::kNone);
  }

  // Facts stay parallel to the CFG, and reachable counters are consistent.
  FUZZ_ASSERT(first.facts.size() == first.cfg.blocks.size());
  std::uint32_t reachable = 0;
  for (const BlockFacts& f : first.facts) reachable += f.reachable ? 1u : 0u;
  FUZZ_ASSERT(reachable == first.reachable_blocks);

  // One analysis per blob: a private cache must return the same object for
  // the same bytes, and its verdict must match the direct call.
  AnalysisCache cache{4};
  const auto a = cache.get(code);
  const auto b = cache.get(code);
  FUZZ_ASSERT(a.get() == b.get());
  FUZZ_ASSERT(a->fingerprint() == first.fingerprint());
  return 0;
}
