// Block and superblock frame harness: the sync/persistence path decodes
// frames received from untrusted peers. Decode must never crash; decoded
// frames must round-trip through the canonical encoder, and certificate
// verification must tolerate arbitrary certificate bytes.
#include "crypto/signature.hpp"
#include "harness.hpp"
#include "txn/block.hpp"

using namespace srbb;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const BytesView input{data, size};

  if (auto block = txn::decode_block(input); block.is_ok()) {
    const Bytes wire = txn::encode_block(block.value());
    auto again = txn::decode_block(wire);
    FUZZ_ASSERT(again.is_ok());
    FUZZ_ASSERT(txn::encode_block(again.value()) == wire);
    FUZZ_ASSERT(again.value().hash() == block.value().hash());
    (void)txn::verify_block_certificate(block.value(),
                                        crypto::SignatureScheme::ed25519());
  }

  if (auto sb = txn::decode_superblock(input); sb.is_ok()) {
    const Bytes wire =
        txn::encode_superblock(sb.value().index, sb.value().blocks);
    auto again = txn::decode_superblock(wire);
    FUZZ_ASSERT(again.is_ok());
    FUZZ_ASSERT(again.value().index == sb.value().index);
    FUZZ_ASSERT(again.value().blocks.size() == sb.value().blocks.size());
    for (std::size_t i = 0; i < sb.value().blocks.size(); ++i) {
      FUZZ_ASSERT(again.value().blocks[i]->hash() ==
                  sb.value().blocks[i]->hash());
    }
  }
  return 0;
}
