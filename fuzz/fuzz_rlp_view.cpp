// Differential harness for the zero-copy RLP path (rlp::decode_view) against
// the copying decoder (rlp::decode), and for the view-based transaction
// decoder against its copying oracle. On every input both decoders must
// agree bit for bit: same accept/reject outcome, same error string, and on
// success an identical tree — payload bytes, list shape, child counts and
// traversal order — with every view payload aliasing the input buffer.
#include <algorithm>
#include <functional>

#include "codec/rlp.hpp"
#include "harness.hpp"
#include "txn/transaction.hpp"

using namespace srbb;

namespace {

void check_same_tree(const rlp::Item& item, const rlp::ItemView& view,
                     BytesView wire) {
  FUZZ_ASSERT(view.valid());
  FUZZ_ASSERT(item.is_list == view.is_list());
  if (!item.is_list) {
    const BytesView payload = view.payload();
    FUZZ_ASSERT(payload.size() == item.payload.size());
    FUZZ_ASSERT(std::equal(payload.begin(), payload.end(),
                           item.payload.begin()));
    // Zero-copy: the payload must be a slice of the wire buffer itself.
    if (!payload.empty()) {
      FUZZ_ASSERT(payload.data() >= wire.data());
      FUZZ_ASSERT(payload.data() + payload.size() <=
                  wire.data() + wire.size());
    }
    return;
  }
  FUZZ_ASSERT(view.size() == item.items.size());
  rlp::ItemView child = item.items.empty() ? rlp::ItemView{} : view.child(0);
  for (std::size_t i = 0; i < item.items.size(); ++i) {
    check_same_tree(item.items[i], child, wire);
    child = child.next_sibling();
  }
}

void check_tx_differential(BytesView input) {
  const auto copying = txn::Transaction::decode_copying(input);
  const auto viewing = txn::Transaction::decode(input);
  FUZZ_ASSERT(copying.is_ok() == viewing.is_ok());
  if (copying.is_ok()) {
    FUZZ_ASSERT(copying.value() == viewing.value());
  } else {
    FUZZ_ASSERT(copying.status().message() == viewing.status().message());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const BytesView input{data, size};
  const auto copying = rlp::decode(input);
  rlp::ViewDoc doc;
  const auto viewing = rlp::decode_view(input, doc);
  FUZZ_ASSERT(copying.is_ok() == viewing.is_ok());
  if (copying.is_ok()) {
    check_same_tree(copying.value(), viewing.value(), input);
  } else {
    FUZZ_ASSERT(copying.status().message() == viewing.status().message());
  }
  // Same bytes through the transaction decoders: most inputs fail both
  // (identically), tx-corpus seeds exercise the success path.
  check_tx_differential(input);
  return 0;
}
