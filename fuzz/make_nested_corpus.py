#!/usr/bin/env python3
"""Regenerates the deep-nesting corpus seeds: `depth` single-element lists
wrapped around an empty list, with correct RLP length headers at every
level (a run of bare 0xc1 bytes does NOT nest — each header must cover the
whole inner encoding, so the decoder rejects it as truncated at depth 2)."""
from pathlib import Path


def nested(depth: int) -> bytes:
    sizes = [1]
    for _ in range(depth):
        inner = sizes[-1]
        header = 1 if inner <= 55 else 1 + (inner.bit_length() + 7) // 8
        sizes.append(header + inner)
    out = bytearray()
    for k in range(depth, 0, -1):
        inner = sizes[k - 1]
        if inner <= 55:
            out.append(0xC0 + inner)
        else:
            be = inner.to_bytes((inner.bit_length() + 7) // 8, "big")
            out.append(0xF7 + len(be))
            out += be
    out.append(0xC0)
    return bytes(out)


here = Path(__file__).parent
(here / "corpus" / "rlp" / "deep_nesting_64.bin").write_bytes(nested(64))
(here / "corpus" / "rlp" / "deep_nesting_600.bin").write_bytes(nested(600))
(here / "corpus" / "rlp" / "deep_nesting_100k.bin").write_bytes(nested(100_000))
