// U256 parsing harness: the input bytes are tried as a decimal string, a hex
// string, and a big-endian byte image. Successful parses must round-trip
// through their formatters — U256 values feed gas accounting and RLP
// integer fields, so a parse/format mismatch is a consensus hazard.
#include <string_view>

#include "common/u256.hpp"
#include "harness.hpp"

using namespace srbb;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text{reinterpret_cast<const char*>(data), size};

  if (const auto dec = U256::from_dec(text)) {
    const auto again = U256::from_dec(dec->to_dec());
    FUZZ_ASSERT(again.has_value() && *again == *dec);
  }
  if (const auto hex = U256::from_hex(text)) {
    const auto again = U256::from_hex(hex->to_hex());
    FUZZ_ASSERT(again.has_value() && *again == *hex);
  }

  // from_be accepts up to 32 bytes (right-aligned); be_bytes() is the full
  // 32-byte image, so value equality (not byte equality) is the invariant.
  if (size <= 32) {
    const U256 value = U256::from_be(BytesView{data, size});
    FUZZ_ASSERT(U256::from_be(value.be_bytes()) == value);
  }
  return 0;
}
