// Interprocedural composition harness: the composed-summary soundness
// contract (docs/ANALYSIS.md "Interprocedural composition") over an
// arbitrary two-contract state — a caller whose bytecode may CALL /
// STATICCALL / DELEGATECALL a callee, both fuzzer-chosen.
//
// Input layout: [0] = calldata length selector, that many calldata bytes,
// a 2-byte big-endian callee-code length, the callee bytecode (installed at
// ...FB), then the remaining bytes as the caller bytecode (installed at
// ...FC, the composition root). Properties:
//  - composition is total and deterministic (two fresh compositions,
//    identical digests);
//  - ⊤ iff an explicit ComposeBailout reason — no silent miss;
//  - a non-⊤ composed summary resolves completely, and predicted ⊇
//    observed: executing the caller, every storage slot any frame touches
//    on ANY account — and every balance read — resolves out of the summary;
//  - a successful execution consumes at least `min_gas`, which stays valid
//    even when the rw side is ⊤ (and kNoSuccessfulPath implies failure).
#include <algorithm>
#include <map>
#include <vector>

#include "evm/analysis/analysis.hpp"
#include "evm/analysis/interproc.hpp"
#include "evm/interpreter.hpp"
#include "harness.hpp"
#include "state/overlay.hpp"
#include "state/statedb.hpp"

using namespace srbb;
using namespace srbb::evm;
using namespace srbb::evm::analysis;

namespace {

Address addr_of(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

Address address_of_word(const U256& word) {
  const Bytes be = word.be_bytes();
  return Address{BytesView{be.data() + 12, 20}};
}

bool contains_hash(const std::vector<Hash32>& sorted, const Hash32& h) {
  return std::binary_search(sorted.begin(), sorted.end(), h);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 4) return 0;
  const std::size_t cd_len = data[0] % 65;  // up to 64 bytes of calldata
  if (size < 1 + cd_len + 2) return 0;
  const Bytes calldata{data + 1, data + 1 + cd_len};
  std::size_t at = 1 + cd_len;
  const std::size_t callee_want =
      (static_cast<std::size_t>(data[at]) << 8) | data[at + 1];
  at += 2;
  const std::size_t callee_len =
      std::min<std::size_t>({callee_want, size - at, 8192});
  const Bytes callee_code{data + at, data + at + callee_len};
  at += callee_len;
  const std::size_t caller_len = std::min<std::size_t>(size - at, 8192);
  const Bytes caller_code{data + at, data + at + caller_len};

  const Address self = addr_of(0xFC);    // composition root
  const Address callee = addr_of(0xFB);  // the reachable second contract
  const Address caller = addr_of(0xCA);  // transaction sender

  state::StateDB db;
  db.add_balance(caller, U256{1'000'000});
  db.set_code(self, caller_code);
  if (!callee_code.empty()) db.set_code(callee, callee_code);
  db.commit();

  // Determinism: a pure function of (state code mapping, root address).
  AnalysisCache cache_a;
  AnalysisCache cache_b;
  const ComposedSummary sum = compose_summary(db, self, cache_a);
  const ComposedSummary again = compose_summary(db, self, cache_b);
  FUZZ_ASSERT(sum.digest() == again.digest());
  FUZZ_ASSERT(sum.top == again.top);
  FUZZ_ASSERT(sum.min_gas == again.min_gas);

  // ⊤ iff an explicit bailout reason.
  FUZZ_ASSERT(sum.top == (sum.bailout != ComposeBailout::kNone));

  // A non-⊤ composition must resolve completely in the root context.
  ResolveContext ctx;
  ctx.calldata = BytesView{calldata};
  ctx.caller = caller;
  ctx.self = self;
  std::map<Address, std::vector<Hash32>> pred_reads;
  std::map<Address, std::vector<Hash32>> pred_writes;
  std::vector<Address> pred_balances;
  if (!sum.top) {
    for (const AccountAccess& aa : sum.accesses) {
      FUZZ_ASSERT(aa.account.resolvable());
      const Address account = address_of_word(*resolve(aa.account, ctx));
      auto& reads = pred_reads[account];
      auto& writes = pred_writes[account];
      for (const SymExpr& e : aa.reads) {
        FUZZ_ASSERT(e.resolvable());
        reads.push_back(resolve(e, ctx)->to_hash());
      }
      for (const SymExpr& e : aa.writes) {
        FUZZ_ASSERT(e.resolvable());
        const Hash32 slot = resolve(e, ctx)->to_hash();
        writes.push_back(slot);
        reads.push_back(slot);  // SSTORE reads the slot first
      }
      std::sort(reads.begin(), reads.end());
      std::sort(writes.begin(), writes.end());
    }
    for (const SymExpr& e : sum.balance_reads) {
      FUZZ_ASSERT(e.resolvable());
      pred_balances.push_back(address_of_word(*resolve(e, ctx)));
    }
    std::sort(pred_balances.begin(), pred_balances.end());
  }

  // Execute the caller and compare observed accesses across ALL frames.
  constexpr std::uint64_t kGasBudget = 400'000;
  state::OverlayState overlay{db};
  BlockContext block;
  TxContext tx;
  tx.origin = caller;
  Evm evm{overlay, block, tx};
  evm.set_validate_code(false);
  Message msg;
  msg.caller = caller;
  msg.to = self;
  msg.gas = kGasBudget;
  msg.data = calldata;
  const ExecResult result = evm.execute(msg);

  // Gas floor: valid whether or not the rw side is ⊤.
  if (result.ok()) {
    FUZZ_ASSERT(sum.min_gas != AnalysisResult::kNoSuccessfulPath);
    FUZZ_ASSERT(kGasBudget - result.gas_left >= sum.min_gas);
  }

  if (sum.top) return 0;  // explicit "may touch anything": rw side unusable
  for (const state::AccessKey& key : overlay.observed_writes().keys) {
    if (key.field != state::AccessField::kStorage) continue;
    const auto it = pred_writes.find(key.addr);
    FUZZ_ASSERT(it != pred_writes.end());
    FUZZ_ASSERT(contains_hash(it->second, key.slot));
  }
  for (const state::AccessKey& key : overlay.observed_reads().keys) {
    if (key.field == state::AccessField::kStorage) {
      const auto it = pred_reads.find(key.addr);
      FUZZ_ASSERT(it != pred_reads.end());
      FUZZ_ASSERT(contains_hash(it->second, key.slot));
    }
    if (key.field == state::AccessField::kBalance) {
      FUZZ_ASSERT(std::binary_search(pred_balances.begin(),
                                     pred_balances.end(), key.addr));
    }
  }
  return 0;
}
