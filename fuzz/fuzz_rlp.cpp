// RLP decoder harness: hostile wire bytes must produce a clean error or a
// canonical item — never a crash, hang, or non-canonical round trip. The
// 512-level nesting cap (codec/rlp.cpp) exists because this harness's
// deep-nesting corpus seed overflowed the recursive decoder's stack.
#include <algorithm>
#include <functional>

#include "codec/rlp.hpp"
#include "harness.hpp"

using namespace srbb;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const BytesView input{data, size};
  auto item = rlp::decode(input);
  if (!item.is_ok()) return 0;
  // Canonical codec: anything that decodes must re-encode to the identical
  // bytes (the property that makes hashes of decoded-then-forwarded
  // structures consistent across validators).
  std::function<Bytes(const rlp::Item&)> reencode =
      [&](const rlp::Item& node) -> Bytes {
    if (!node.is_list) return rlp::encode_bytes(node.payload);
    std::vector<Bytes> parts;
    parts.reserve(node.items.size());
    for (const rlp::Item& child : node.items) parts.push_back(reencode(child));
    return rlp::encode_list(parts);
  };
  const Bytes canonical = reencode(item.value());
  FUZZ_ASSERT(canonical.size() == input.size());
  FUZZ_ASSERT(std::equal(canonical.begin(), canonical.end(), input.begin()));
  return 0;
}
