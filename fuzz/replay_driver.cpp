// Deterministic corpus replay: feed every file under the given paths through
// the linked harness's LLVMFuzzerTestOneInput. Used two ways:
//  - as the ctest `fuzz_replay_*` tests over fuzz/corpus/<target>/, so any
//    checked-in regression input is exercised by tier-1;
//  - as the standalone fuzz binary when the compiler lacks libFuzzer
//    (GCC builds with -DSRBB_FUZZ=ON).
// Exit status is non-zero when a path cannot be read; property violations
// abort inside the harness, which ctest reports as a failed test.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "harness.hpp"

namespace {

bool run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  std::printf("replay: %s (%zu bytes)\n", path.c_str(), data.size());
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path{argv[i]};
    if (std::filesystem::is_directory(path)) {
      // Sorted traversal so replay order (and any failure) is reproducible.
      std::vector<std::filesystem::path> entries;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) entries.push_back(entry.path());
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& file : entries) {
        if (!run_file(file)) return 1;
        ++files;
      }
    } else {
      if (!run_file(path)) return 1;
      ++files;
    }
  }
  std::printf("replay: %zu input(s) passed\n", files);
  return 0;
}
