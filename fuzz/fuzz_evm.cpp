// EVM assembler + interpreter harness. The input is used twice:
//  1. as assembler source text — assemble() must cleanly reject or produce
//     bytecode, and assembled bytecode must disassemble without faulting;
//  2. as raw bytecode executed in a fresh deterministic StateDB — whatever
//     the code does, execution must terminate within the gas budget and
//     never create gas (the conservation property a consensus EVM owes).
#include "evm/asm.hpp"
#include "evm/interpreter.hpp"
#include "harness.hpp"
#include "state/statedb.hpp"

using namespace srbb;

namespace {

constexpr std::uint64_t kGasBudget = 200'000;

void run_code(const Bytes& code, const Bytes& calldata) {
  state::StateDB db;
  Address contract;
  contract[19] = 0xFC;
  Address caller;
  caller[19] = 0xCA;
  db.add_balance(caller, U256{1'000'000});
  db.set_code(contract, code);
  db.commit();

  evm::Evm evm{db, {}, {}};
  evm::Message msg;
  msg.caller = caller;
  msg.to = contract;
  msg.gas = kGasBudget;
  msg.data = calldata;
  const evm::ExecResult result = evm.execute(msg);
  FUZZ_ASSERT(result.gas_left <= kGasBudget);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view source{reinterpret_cast<const char*>(data), size};
  if (auto assembled = evm::assemble(source); assembled.is_ok()) {
    (void)evm::disassemble(assembled.value());
    run_code(assembled.value(), {});
  }

  run_code(Bytes{data, data + size}, {});
  return 0;
}
