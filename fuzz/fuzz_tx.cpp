// Transaction codec harness: wire bytes a Byzantine peer controls. Decode
// must never crash; anything that decodes must re-encode/re-decode to the
// same transaction with a stable hash, and signature verification must run
// without faulting on arbitrary key/signature material.
#include "crypto/signature.hpp"
#include "harness.hpp"
#include "txn/transaction.hpp"

using namespace srbb;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const BytesView input{data, size};
  auto decoded = txn::Transaction::decode(input);
  if (!decoded.is_ok()) return 0;
  const txn::Transaction& tx = decoded.value();

  // Codec idempotence: decode(encode(tx)) == tx, and the id hash is stable.
  const Bytes wire = tx.encode();
  auto again = txn::Transaction::decode(wire);
  FUZZ_ASSERT(again.is_ok());
  FUZZ_ASSERT(again.value() == tx);
  FUZZ_ASSERT(again.value().hash() == tx.hash());
  FUZZ_ASSERT(tx.wire_size() == wire.size());

  // Must tolerate arbitrary pubkey/signature bytes (no crash either way).
  (void)txn::verify_signature(tx, crypto::SignatureScheme::ed25519());
  return 0;
}
