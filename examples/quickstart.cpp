// Quickstart: spin up a 4-validator SRBB network on the simulated wire,
// deploy a counter contract through consensus, invoke it, and read the
// replicated state back.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "diablo/client.hpp"
#include "evm/contracts.hpp"
#include "evm/interpreter.hpp"
#include "srbb/validator.hpp"

using namespace srbb;

int main() {
  const auto& scheme = crypto::SignatureScheme::ed25519();  // real signatures

  // --- 1. a simulated network: 4 validators in one region, 1 client -------
  sim::Simulation simulation;
  sim::NetworkConfig net_config;
  net_config.latency = sim::LatencyModel::uniform(1, millis(5));
  sim::Network network{simulation, net_config};

  // --- 2. genesis: fund Alice --------------------------------------------
  const crypto::Identity alice = scheme.make_identity(1001);
  node::GenesisSpec genesis;
  genesis.accounts.push_back({alice.address(), U256{1'000'000'000}});

  // --- 3. four SRBB validators (TVPR + RPM on), replicated execution ------
  rpm::RpmConfig rpm_config;
  rpm_config.n = 4;
  rpm_config.f = 1;
  rpm_config.scheme = &scheme;
  auto rpm_contract = std::make_shared<rpm::RewardPenaltyMechanism>(rpm_config);

  std::vector<std::unique_ptr<node::ValidatorNode>> validators;
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    node::ValidatorConfig config;
    config.n = 4;
    config.f = 1;
    config.self = rank;
    config.scheme = &scheme;
    config.min_block_interval = millis(200);
    auto oracle = std::make_shared<node::ExecutionOracle>(
        genesis, evm::BlockContext{}, scheme);
    validators.push_back(std::make_unique<node::ValidatorNode>(
        simulation, rank, 0, config, oracle, rpm_contract, nullptr));
    network.attach(validators.back().get());
    rpm_contract->register_validator(validators.back()->identity().address(),
                                     U256{1'000'000});
  }

  diablo::ClientNode client{simulation, 4, 0};
  network.attach(&client);
  for (auto& validator : validators) validator->start();

  // --- 4. deploy the counter DApp, then increment it three times ----------
  txn::TxParams deploy;
  deploy.kind = txn::TxKind::kDeploy;
  deploy.nonce = 0;
  deploy.gas_limit = 5'000'000;
  deploy.data = evm::counter_contract().deploy_code;
  client.add_submission(
      millis(10), txn::make_tx_ptr(txn::make_signed(deploy, alice, scheme)), 0);

  const Address counter = evm::create_address(alice.address(), 0);
  for (std::uint64_t nonce = 1; nonce <= 3; ++nonce) {
    txn::TxParams invoke;
    invoke.kind = txn::TxKind::kInvoke;
    invoke.nonce = nonce;
    invoke.gas_limit = 100'000;
    invoke.to = counter;
    invoke.data = evm::encode_call("increment()", {});
    client.add_submission(
        millis(500 + 100 * nonce),
        txn::make_tx_ptr(txn::make_signed(invoke, alice, scheme)),
        static_cast<sim::NodeId>(nonce % 4));
  }
  client.start();

  // --- 5. run and inspect --------------------------------------------------
  simulation.run_until(seconds(10));

  std::printf("client: sent=%llu committed=%llu\n",
              static_cast<unsigned long long>(client.sent()),
              static_cast<unsigned long long>(client.committed()));
  for (const auto& validator : validators) {
    const U256 value =
        validator->oracle().db().storage(counter, U256{0}.to_hash());
    std::printf("validator %u: height=%llu counter=%s state-root=%s...\n",
                validator->id(),
                static_cast<unsigned long long>(validator->chain_height()),
                value.to_dec().c_str(),
                validator->last_state_root().hex().substr(0, 16).c_str());
  }
  std::printf("\nAll four replicas independently executed the same blocks "
              "and agree: counter == 3.\n");
  return 0;
}
