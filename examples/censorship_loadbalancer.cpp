// Censorship mitigation demo (§VI): with TVPR there is no transaction
// gossip, so a validator that refuses to include a client's transactions
// censors them. The paper's proposed mitigation is a load balancer that
// forwards each (re)submission to a random validator, plus client retries.
// This example runs both setups against a censoring validator.
//
//   $ ./examples/censorship_loadbalancer
#include <cstdio>
#include <memory>

#include "diablo/client.hpp"
#include "srbb/load_balancer.hpp"
#include "srbb/validator.hpp"

using namespace srbb;

namespace {

struct Outcome {
  std::uint64_t sent = 0;
  std::uint64_t committed = 0;
  std::uint64_t resends = 0;
};

Outcome run(bool with_load_balancer) {
  const auto& scheme = crypto::SignatureScheme::fast_sim();
  sim::Simulation simulation;
  sim::Network network{simulation, sim::NetworkConfig{}};

  const crypto::Identity alice = scheme.make_identity(1001);
  node::GenesisSpec genesis;
  genesis.accounts.push_back({alice.address(), U256{1'000'000'000}});

  std::vector<std::unique_ptr<node::ValidatorNode>> validators;
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    node::ValidatorConfig config;
    config.n = 4;
    config.f = 1;
    config.self = rank;
    config.scheme = &scheme;
    config.min_block_interval = millis(200);
    config.behavior.censor = rank == 0;  // validator 0 censors everything
    auto oracle = std::make_shared<node::ExecutionOracle>(
        genesis, evm::BlockContext{}, scheme);
    validators.push_back(std::make_unique<node::ValidatorNode>(
        simulation, rank, 0, config, oracle, nullptr, nullptr));
    network.attach(validators.back().get());
  }

  // Node 4: the load balancer; node 5: the client.
  node::LoadBalancerNode balancer{simulation, 4, 0, 4, /*seed=*/7};
  network.attach(&balancer);
  diablo::ClientNode client{simulation, 5, 0};
  // Retry unacknowledged transactions after 2 s (the §VI loop). Without the
  // balancer the client retries directly against the next validator.
  client.enable_resend(seconds(2), with_load_balancer ? 1 : 4, 5);
  network.attach(&client);
  for (auto& validator : validators) validator->start();

  for (std::uint64_t nonce = 0; nonce < 8; ++nonce) {
    txn::TxParams params;
    params.nonce = nonce;
    params.gas_limit = 30'000;
    params.to = scheme.make_identity(9).address();
    params.value = U256{1};
    // Every submission initially goes toward the censor: target 0 directly,
    // or through the balancer (which may also pick the censor).
    client.add_submission(
        millis(10 + 50 * nonce),
        txn::make_tx_ptr(txn::make_signed(params, alice, scheme)),
        with_load_balancer ? 4u : 0u);
  }
  client.start();
  simulation.run_until(seconds(20));
  return Outcome{client.sent(), client.committed(), client.resends()};
}

}  // namespace

int main() {
  const Outcome direct = run(false);
  const Outcome balanced = run(true);
  std::printf("setup                          sent  committed  resends\n");
  std::printf("------------------------------------------------------\n");
  std::printf("client -> censor, retries next  %4llu %10llu %8llu\n",
              static_cast<unsigned long long>(direct.sent),
              static_cast<unsigned long long>(direct.committed),
              static_cast<unsigned long long>(direct.resends));
  std::printf("client -> load balancer         %4llu %10llu %8llu\n",
              static_cast<unsigned long long>(balanced.sent),
              static_cast<unsigned long long>(balanced.committed),
              static_cast<unsigned long long>(balanced.resends));
  std::printf(
      "\nBoth §VI mechanisms recover every censored transaction: retries "
      "walk to a non-censoring validator, and the balancer's random "
      "forwarding makes a retry land elsewhere with high probability.\n");
  return 0;
}
