// Exchange DApp demo: the NASDAQ-style workload of the paper's evaluation,
// at desk scale. Ten validators across the paper's 10 AWS regions run the
// exchange contract; clients replay a bursty stream of trades, and the
// example prints committed quotes plus the congestion counters that stay
// flat thanks to TVPR.
//
//   $ ./examples/dapp_exchange
#include <cstdio>

#include "diablo/report.hpp"
#include "diablo/runner.hpp"
#include "evm/contracts.hpp"

using namespace srbb;

int main() {
  diablo::RunConfig config;
  config.system_name = "SRBB";
  config.kind = diablo::SystemKind::kSrbb;
  config.validators = 10;  // one per AWS region
  config.clients = 5;
  config.latency = sim::LatencyModel::aws_global();
  config.rpm = true;

  // A one-minute trading session with a burst in the middle, like the
  // NASDAQ trace's market-open spike.
  config.workload = diablo::WorkloadSpec::constant(
      "trading", 50.0, 60, diablo::TxShape::kExchangeTrade);
  config.workload.rates_per_second[30] = 1'000.0;  // burst second
  config.drain = seconds(30);

  std::printf("Running a 10-validator SRBB exchange across %zu regions...\n\n",
              config.latency.region_count());
  const diablo::RunResult result = diablo::run_experiment(config);

  std::printf("%s\n%s\n\n", diablo::format_header().c_str(),
              diablo::format_row(result).c_str());
  std::printf("%s\n\n", diablo::format_diagnostics(result).c_str());
  std::printf(
      "The burst second (%0.0f trades) is absorbed without losses: each\n"
      "validator eagerly validates only the trades its own clients sent\n"
      "(TVPR), so no pool ever sees the full burst.\n",
      1'000.0);
  return 0;
}
