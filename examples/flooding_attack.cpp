// Flooding-attack demo (§V-B): a Byzantine validator stuffs its block
// proposals with invalid zero-balance transactions. Watch RPM (Alg. 2)
// gather reports from the correct validators, slash the flooder's entire
// deposit, redistribute it, and exclude the culprit — after which the
// network returns to clean blocks.
//
//   $ ./examples/flooding_attack
#include <cstdio>
#include <memory>

#include "diablo/client.hpp"
#include "srbb/validator.hpp"

using namespace srbb;

int main() {
  const auto& scheme = crypto::SignatureScheme::fast_sim();
  sim::Simulation simulation;
  sim::Network network{simulation, sim::NetworkConfig{}};

  const crypto::Identity alice = scheme.make_identity(1001);
  node::GenesisSpec genesis;
  genesis.accounts.push_back({alice.address(), U256{1'000'000'000}});

  rpm::RpmConfig rpm_config;
  rpm_config.n = 4;
  rpm_config.f = 1;
  rpm_config.scheme = &scheme;
  auto rpm_contract = std::make_shared<rpm::RewardPenaltyMechanism>(rpm_config);

  std::vector<std::unique_ptr<node::ValidatorNode>> validators;
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    node::ValidatorConfig config;
    config.n = 4;
    config.f = 1;
    config.self = rank;
    config.scheme = &scheme;
    config.rpm = true;
    config.min_block_interval = millis(200);
    if (rank == 3) {
      config.behavior.flood_invalid_per_block = 50;  // the attacker
    }
    auto oracle = std::make_shared<node::ExecutionOracle>(
        genesis, evm::BlockContext{}, scheme);
    validators.push_back(std::make_unique<node::ValidatorNode>(
        simulation, rank, 0, config, oracle, rpm_contract, nullptr));
    network.attach(validators.back().get());
    rpm_contract->register_validator(validators.back()->identity().address(),
                                     U256{5'000'000});
  }
  diablo::ClientNode client{simulation, 4, 0};
  network.attach(&client);
  for (auto& validator : validators) validator->start();

  // A trickle of honest transfers while the attack runs.
  for (std::uint64_t nonce = 0; nonce < 10; ++nonce) {
    txn::TxParams params;
    params.nonce = nonce;
    params.gas_limit = 30'000;
    params.to = scheme.make_identity(7).address();
    params.value = U256{100};
    client.add_submission(millis(50 + 200 * nonce),
                          txn::make_tx_ptr(txn::make_signed(params, alice, scheme)),
                          static_cast<sim::NodeId>(nonce % 3));
  }
  client.start();

  const Address byz = validators[3]->identity().address();
  std::printf("before: Byzantine deposit = %s\n",
              rpm_contract->deposit_of(byz).to_dec().c_str());

  simulation.run_until(seconds(10));

  std::printf("after : Byzantine deposit = %s, excluded = %s\n",
              rpm_contract->deposit_of(byz).to_dec().c_str(),
              rpm_contract->is_excluded(byz) ? "yes" : "no");
  for (const auto& event : rpm_contract->slash_events()) {
    std::printf("slash event: validator %s lost %s at block %llu\n",
                event.validator.hex().substr(0, 12).c_str(),
                event.penalty.to_dec().c_str(),
                static_cast<unsigned long long>(event.block_number));
  }
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    std::printf("correct validator %u deposit = %s (grew by redistributed "
                "penalty + block rewards)\n",
                rank,
                rpm_contract
                    ->deposit_of(validators[rank]->identity().address())
                    .to_dec()
                    .c_str());
  }
  std::printf("honest transactions committed: %llu / %llu (the flood never "
              "cost a valid transaction)\n",
              static_cast<unsigned long long>(client.committed()),
              static_cast<unsigned long long>(client.sent()));
  std::printf("invalid transactions discarded at execution: %llu\n",
              static_cast<unsigned long long>(
                  validators[0]->metrics().txs_discarded_invalid));
  return 0;
}
