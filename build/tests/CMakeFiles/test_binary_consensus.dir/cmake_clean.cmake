file(REMOVE_RECURSE
  "CMakeFiles/test_binary_consensus.dir/test_binary_consensus.cpp.o"
  "CMakeFiles/test_binary_consensus.dir/test_binary_consensus.cpp.o.d"
  "test_binary_consensus"
  "test_binary_consensus.pdb"
  "test_binary_consensus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
