# Empty compiler generated dependencies file for test_binary_consensus.
# This may be replaced when dependencies are built.
