file(REMOVE_RECURSE
  "CMakeFiles/test_evm.dir/test_evm.cpp.o"
  "CMakeFiles/test_evm.dir/test_evm.cpp.o.d"
  "test_evm"
  "test_evm.pdb"
  "test_evm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
