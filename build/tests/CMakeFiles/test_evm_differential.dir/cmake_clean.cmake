file(REMOVE_RECURSE
  "CMakeFiles/test_evm_differential.dir/test_evm_differential.cpp.o"
  "CMakeFiles/test_evm_differential.dir/test_evm_differential.cpp.o.d"
  "test_evm_differential"
  "test_evm_differential.pdb"
  "test_evm_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
