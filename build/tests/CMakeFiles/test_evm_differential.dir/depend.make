# Empty dependencies file for test_evm_differential.
# This may be replaced when dependencies are built.
