file(REMOVE_RECURSE
  "CMakeFiles/test_txpool.dir/test_txpool.cpp.o"
  "CMakeFiles/test_txpool.dir/test_txpool.cpp.o.d"
  "test_txpool"
  "test_txpool.pdb"
  "test_txpool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
