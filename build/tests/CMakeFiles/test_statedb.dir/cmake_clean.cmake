file(REMOVE_RECURSE
  "CMakeFiles/test_statedb.dir/test_statedb.cpp.o"
  "CMakeFiles/test_statedb.dir/test_statedb.cpp.o.d"
  "test_statedb"
  "test_statedb.pdb"
  "test_statedb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
