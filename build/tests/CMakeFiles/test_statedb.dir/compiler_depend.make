# Empty compiler generated dependencies file for test_statedb.
# This may be replaced when dependencies are built.
