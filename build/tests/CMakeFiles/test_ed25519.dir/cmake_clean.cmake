file(REMOVE_RECURSE
  "CMakeFiles/test_ed25519.dir/test_ed25519.cpp.o"
  "CMakeFiles/test_ed25519.dir/test_ed25519.cpp.o.d"
  "test_ed25519"
  "test_ed25519.pdb"
  "test_ed25519[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ed25519.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
