file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_chain.dir/test_gossip_chain.cpp.o"
  "CMakeFiles/test_gossip_chain.dir/test_gossip_chain.cpp.o.d"
  "test_gossip_chain"
  "test_gossip_chain.pdb"
  "test_gossip_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
