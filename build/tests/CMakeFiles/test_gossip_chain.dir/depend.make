# Empty dependencies file for test_gossip_chain.
# This may be replaced when dependencies are built.
