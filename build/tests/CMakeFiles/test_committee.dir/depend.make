# Empty dependencies file for test_committee.
# This may be replaced when dependencies are built.
