
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_diablo_runner.cpp" "tests/CMakeFiles/test_diablo_runner.dir/test_diablo_runner.cpp.o" "gcc" "tests/CMakeFiles/test_diablo_runner.dir/test_diablo_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diablo/CMakeFiles/srbb_diablo.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/CMakeFiles/srbb_chains.dir/DependInfo.cmake"
  "/root/repo/build/src/srbb/CMakeFiles/srbb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/srbb_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/srbb_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpm/CMakeFiles/srbb_rpm.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/srbb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/srbb_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/srbb_state.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/srbb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/srbb_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
