# Empty compiler generated dependencies file for test_diablo_runner.
# This may be replaced when dependencies are built.
