file(REMOVE_RECURSE
  "CMakeFiles/test_diablo_runner.dir/test_diablo_runner.cpp.o"
  "CMakeFiles/test_diablo_runner.dir/test_diablo_runner.cpp.o.d"
  "test_diablo_runner"
  "test_diablo_runner.pdb"
  "test_diablo_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diablo_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
