file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_schedules.dir/test_consensus_schedules.cpp.o"
  "CMakeFiles/test_consensus_schedules.dir/test_consensus_schedules.cpp.o.d"
  "test_consensus_schedules"
  "test_consensus_schedules.pdb"
  "test_consensus_schedules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
