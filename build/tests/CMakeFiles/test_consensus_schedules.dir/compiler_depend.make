# Empty compiler generated dependencies file for test_consensus_schedules.
# This may be replaced when dependencies are built.
