file(REMOVE_RECURSE
  "CMakeFiles/test_rlp.dir/test_rlp.cpp.o"
  "CMakeFiles/test_rlp.dir/test_rlp.cpp.o.d"
  "test_rlp"
  "test_rlp.pdb"
  "test_rlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
