# Empty dependencies file for test_rlp.
# This may be replaced when dependencies are built.
