file(REMOVE_RECURSE
  "CMakeFiles/test_sha.dir/test_sha.cpp.o"
  "CMakeFiles/test_sha.dir/test_sha.cpp.o.d"
  "test_sha"
  "test_sha.pdb"
  "test_sha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
