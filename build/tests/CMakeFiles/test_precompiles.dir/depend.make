# Empty dependencies file for test_precompiles.
# This may be replaced when dependencies are built.
