# Empty dependencies file for test_srbb_node.
# This may be replaced when dependencies are built.
