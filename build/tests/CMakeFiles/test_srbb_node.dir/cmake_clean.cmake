file(REMOVE_RECURSE
  "CMakeFiles/test_srbb_node.dir/test_srbb_node.cpp.o"
  "CMakeFiles/test_srbb_node.dir/test_srbb_node.cpp.o.d"
  "test_srbb_node"
  "test_srbb_node.pdb"
  "test_srbb_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srbb_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
