file(REMOVE_RECURSE
  "CMakeFiles/test_rpm.dir/test_rpm.cpp.o"
  "CMakeFiles/test_rpm.dir/test_rpm.cpp.o.d"
  "test_rpm"
  "test_rpm.pdb"
  "test_rpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
