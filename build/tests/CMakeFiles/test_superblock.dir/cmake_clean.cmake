file(REMOVE_RECURSE
  "CMakeFiles/test_superblock.dir/test_superblock.cpp.o"
  "CMakeFiles/test_superblock.dir/test_superblock.cpp.o.d"
  "test_superblock"
  "test_superblock.pdb"
  "test_superblock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
