file(REMOVE_RECURSE
  "CMakeFiles/test_governance.dir/test_governance.cpp.o"
  "CMakeFiles/test_governance.dir/test_governance.cpp.o.d"
  "test_governance"
  "test_governance.pdb"
  "test_governance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
