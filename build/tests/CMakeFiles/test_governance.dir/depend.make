# Empty dependencies file for test_governance.
# This may be replaced when dependencies are built.
