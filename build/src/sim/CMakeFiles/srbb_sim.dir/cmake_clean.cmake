file(REMOVE_RECURSE
  "CMakeFiles/srbb_sim.dir/event_loop.cpp.o"
  "CMakeFiles/srbb_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/srbb_sim.dir/gossip.cpp.o"
  "CMakeFiles/srbb_sim.dir/gossip.cpp.o.d"
  "CMakeFiles/srbb_sim.dir/latency.cpp.o"
  "CMakeFiles/srbb_sim.dir/latency.cpp.o.d"
  "CMakeFiles/srbb_sim.dir/network.cpp.o"
  "CMakeFiles/srbb_sim.dir/network.cpp.o.d"
  "libsrbb_sim.a"
  "libsrbb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
