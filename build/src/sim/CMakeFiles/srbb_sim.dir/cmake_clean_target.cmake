file(REMOVE_RECURSE
  "libsrbb_sim.a"
)
