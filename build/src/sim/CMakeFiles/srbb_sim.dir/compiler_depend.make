# Empty compiler generated dependencies file for srbb_sim.
# This may be replaced when dependencies are built.
