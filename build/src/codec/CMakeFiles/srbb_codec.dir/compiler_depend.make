# Empty compiler generated dependencies file for srbb_codec.
# This may be replaced when dependencies are built.
