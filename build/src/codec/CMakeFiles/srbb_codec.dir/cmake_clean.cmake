file(REMOVE_RECURSE
  "CMakeFiles/srbb_codec.dir/rlp.cpp.o"
  "CMakeFiles/srbb_codec.dir/rlp.cpp.o.d"
  "libsrbb_codec.a"
  "libsrbb_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
