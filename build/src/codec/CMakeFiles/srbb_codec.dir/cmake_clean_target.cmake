file(REMOVE_RECURSE
  "libsrbb_codec.a"
)
