file(REMOVE_RECURSE
  "CMakeFiles/srbb_core.dir/oracle.cpp.o"
  "CMakeFiles/srbb_core.dir/oracle.cpp.o.d"
  "CMakeFiles/srbb_core.dir/validator.cpp.o"
  "CMakeFiles/srbb_core.dir/validator.cpp.o.d"
  "libsrbb_core.a"
  "libsrbb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
