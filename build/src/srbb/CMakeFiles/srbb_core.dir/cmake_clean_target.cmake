file(REMOVE_RECURSE
  "libsrbb_core.a"
)
