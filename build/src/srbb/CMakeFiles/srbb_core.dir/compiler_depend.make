# Empty compiler generated dependencies file for srbb_core.
# This may be replaced when dependencies are built.
