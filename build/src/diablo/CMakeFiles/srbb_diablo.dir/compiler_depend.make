# Empty compiler generated dependencies file for srbb_diablo.
# This may be replaced when dependencies are built.
