file(REMOVE_RECURSE
  "CMakeFiles/srbb_diablo.dir/client.cpp.o"
  "CMakeFiles/srbb_diablo.dir/client.cpp.o.d"
  "CMakeFiles/srbb_diablo.dir/report.cpp.o"
  "CMakeFiles/srbb_diablo.dir/report.cpp.o.d"
  "CMakeFiles/srbb_diablo.dir/runner.cpp.o"
  "CMakeFiles/srbb_diablo.dir/runner.cpp.o.d"
  "CMakeFiles/srbb_diablo.dir/workload.cpp.o"
  "CMakeFiles/srbb_diablo.dir/workload.cpp.o.d"
  "libsrbb_diablo.a"
  "libsrbb_diablo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_diablo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
