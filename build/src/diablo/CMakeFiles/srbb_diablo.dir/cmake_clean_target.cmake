file(REMOVE_RECURSE
  "libsrbb_diablo.a"
)
