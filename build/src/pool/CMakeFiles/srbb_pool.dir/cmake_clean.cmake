file(REMOVE_RECURSE
  "CMakeFiles/srbb_pool.dir/txpool.cpp.o"
  "CMakeFiles/srbb_pool.dir/txpool.cpp.o.d"
  "libsrbb_pool.a"
  "libsrbb_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
