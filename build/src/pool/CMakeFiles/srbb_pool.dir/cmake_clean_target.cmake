file(REMOVE_RECURSE
  "libsrbb_pool.a"
)
