# Empty compiler generated dependencies file for srbb_pool.
# This may be replaced when dependencies are built.
