file(REMOVE_RECURSE
  "libsrbb_crypto.a"
)
