file(REMOVE_RECURSE
  "CMakeFiles/srbb_crypto.dir/batch.cpp.o"
  "CMakeFiles/srbb_crypto.dir/batch.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/srbb_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/keccak.cpp.o"
  "CMakeFiles/srbb_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/merkle.cpp.o"
  "CMakeFiles/srbb_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/sha256.cpp.o"
  "CMakeFiles/srbb_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/sha512.cpp.o"
  "CMakeFiles/srbb_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/srbb_crypto.dir/signature.cpp.o"
  "CMakeFiles/srbb_crypto.dir/signature.cpp.o.d"
  "libsrbb_crypto.a"
  "libsrbb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
