# Empty compiler generated dependencies file for srbb_crypto.
# This may be replaced when dependencies are built.
