# Empty compiler generated dependencies file for srbb_chains.
# This may be replaced when dependencies are built.
