file(REMOVE_RECURSE
  "libsrbb_chains.a"
)
