file(REMOVE_RECURSE
  "CMakeFiles/srbb_chains.dir/gossip_chain.cpp.o"
  "CMakeFiles/srbb_chains.dir/gossip_chain.cpp.o.d"
  "CMakeFiles/srbb_chains.dir/presets.cpp.o"
  "CMakeFiles/srbb_chains.dir/presets.cpp.o.d"
  "libsrbb_chains.a"
  "libsrbb_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
