file(REMOVE_RECURSE
  "CMakeFiles/srbb_rpm.dir/committee.cpp.o"
  "CMakeFiles/srbb_rpm.dir/committee.cpp.o.d"
  "CMakeFiles/srbb_rpm.dir/rpm.cpp.o"
  "CMakeFiles/srbb_rpm.dir/rpm.cpp.o.d"
  "libsrbb_rpm.a"
  "libsrbb_rpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_rpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
