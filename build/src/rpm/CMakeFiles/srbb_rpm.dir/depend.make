# Empty dependencies file for srbb_rpm.
# This may be replaced when dependencies are built.
