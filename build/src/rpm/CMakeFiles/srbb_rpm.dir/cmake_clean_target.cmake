file(REMOVE_RECURSE
  "libsrbb_rpm.a"
)
