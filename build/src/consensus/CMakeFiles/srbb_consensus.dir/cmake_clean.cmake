file(REMOVE_RECURSE
  "CMakeFiles/srbb_consensus.dir/binary.cpp.o"
  "CMakeFiles/srbb_consensus.dir/binary.cpp.o.d"
  "CMakeFiles/srbb_consensus.dir/superblock.cpp.o"
  "CMakeFiles/srbb_consensus.dir/superblock.cpp.o.d"
  "libsrbb_consensus.a"
  "libsrbb_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
