# Empty dependencies file for srbb_consensus.
# This may be replaced when dependencies are built.
