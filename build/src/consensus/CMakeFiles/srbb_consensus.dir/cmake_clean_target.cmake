file(REMOVE_RECURSE
  "libsrbb_consensus.a"
)
