file(REMOVE_RECURSE
  "libsrbb_state.a"
)
