
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/state/bloom.cpp" "src/state/CMakeFiles/srbb_state.dir/bloom.cpp.o" "gcc" "src/state/CMakeFiles/srbb_state.dir/bloom.cpp.o.d"
  "/root/repo/src/state/statedb.cpp" "src/state/CMakeFiles/srbb_state.dir/statedb.cpp.o" "gcc" "src/state/CMakeFiles/srbb_state.dir/statedb.cpp.o.d"
  "/root/repo/src/state/trie.cpp" "src/state/CMakeFiles/srbb_state.dir/trie.cpp.o" "gcc" "src/state/CMakeFiles/srbb_state.dir/trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srbb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/srbb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/srbb_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
