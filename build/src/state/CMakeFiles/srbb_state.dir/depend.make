# Empty dependencies file for srbb_state.
# This may be replaced when dependencies are built.
