file(REMOVE_RECURSE
  "CMakeFiles/srbb_state.dir/bloom.cpp.o"
  "CMakeFiles/srbb_state.dir/bloom.cpp.o.d"
  "CMakeFiles/srbb_state.dir/statedb.cpp.o"
  "CMakeFiles/srbb_state.dir/statedb.cpp.o.d"
  "CMakeFiles/srbb_state.dir/trie.cpp.o"
  "CMakeFiles/srbb_state.dir/trie.cpp.o.d"
  "libsrbb_state.a"
  "libsrbb_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
