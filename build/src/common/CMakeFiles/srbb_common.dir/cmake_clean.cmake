file(REMOVE_RECURSE
  "CMakeFiles/srbb_common.dir/bytes.cpp.o"
  "CMakeFiles/srbb_common.dir/bytes.cpp.o.d"
  "CMakeFiles/srbb_common.dir/rng.cpp.o"
  "CMakeFiles/srbb_common.dir/rng.cpp.o.d"
  "CMakeFiles/srbb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/srbb_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/srbb_common.dir/u256.cpp.o"
  "CMakeFiles/srbb_common.dir/u256.cpp.o.d"
  "libsrbb_common.a"
  "libsrbb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
