file(REMOVE_RECURSE
  "libsrbb_common.a"
)
