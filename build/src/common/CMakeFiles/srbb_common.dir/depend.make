# Empty dependencies file for srbb_common.
# This may be replaced when dependencies are built.
