file(REMOVE_RECURSE
  "libsrbb_txn.a"
)
