file(REMOVE_RECURSE
  "CMakeFiles/srbb_txn.dir/block.cpp.o"
  "CMakeFiles/srbb_txn.dir/block.cpp.o.d"
  "CMakeFiles/srbb_txn.dir/executor.cpp.o"
  "CMakeFiles/srbb_txn.dir/executor.cpp.o.d"
  "CMakeFiles/srbb_txn.dir/transaction.cpp.o"
  "CMakeFiles/srbb_txn.dir/transaction.cpp.o.d"
  "CMakeFiles/srbb_txn.dir/validation.cpp.o"
  "CMakeFiles/srbb_txn.dir/validation.cpp.o.d"
  "libsrbb_txn.a"
  "libsrbb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
