# Empty dependencies file for srbb_txn.
# This may be replaced when dependencies are built.
