file(REMOVE_RECURSE
  "libsrbb_evm.a"
)
