# Empty compiler generated dependencies file for srbb_evm.
# This may be replaced when dependencies are built.
