file(REMOVE_RECURSE
  "CMakeFiles/srbb_evm.dir/asm.cpp.o"
  "CMakeFiles/srbb_evm.dir/asm.cpp.o.d"
  "CMakeFiles/srbb_evm.dir/contracts.cpp.o"
  "CMakeFiles/srbb_evm.dir/contracts.cpp.o.d"
  "CMakeFiles/srbb_evm.dir/interpreter.cpp.o"
  "CMakeFiles/srbb_evm.dir/interpreter.cpp.o.d"
  "CMakeFiles/srbb_evm.dir/opcodes.cpp.o"
  "CMakeFiles/srbb_evm.dir/opcodes.cpp.o.d"
  "CMakeFiles/srbb_evm.dir/precompiles.cpp.o"
  "CMakeFiles/srbb_evm.dir/precompiles.cpp.o.d"
  "libsrbb_evm.a"
  "libsrbb_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
