
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evm/asm.cpp" "src/evm/CMakeFiles/srbb_evm.dir/asm.cpp.o" "gcc" "src/evm/CMakeFiles/srbb_evm.dir/asm.cpp.o.d"
  "/root/repo/src/evm/contracts.cpp" "src/evm/CMakeFiles/srbb_evm.dir/contracts.cpp.o" "gcc" "src/evm/CMakeFiles/srbb_evm.dir/contracts.cpp.o.d"
  "/root/repo/src/evm/interpreter.cpp" "src/evm/CMakeFiles/srbb_evm.dir/interpreter.cpp.o" "gcc" "src/evm/CMakeFiles/srbb_evm.dir/interpreter.cpp.o.d"
  "/root/repo/src/evm/opcodes.cpp" "src/evm/CMakeFiles/srbb_evm.dir/opcodes.cpp.o" "gcc" "src/evm/CMakeFiles/srbb_evm.dir/opcodes.cpp.o.d"
  "/root/repo/src/evm/precompiles.cpp" "src/evm/CMakeFiles/srbb_evm.dir/precompiles.cpp.o" "gcc" "src/evm/CMakeFiles/srbb_evm.dir/precompiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srbb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/srbb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/srbb_state.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/srbb_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
