# Empty compiler generated dependencies file for srbb-sim.
# This may be replaced when dependencies are built.
