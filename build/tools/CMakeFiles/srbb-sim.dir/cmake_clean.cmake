file(REMOVE_RECURSE
  "CMakeFiles/srbb-sim.dir/srbb_sim_main.cpp.o"
  "CMakeFiles/srbb-sim.dir/srbb_sim_main.cpp.o.d"
  "srbb-sim"
  "srbb-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srbb-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
