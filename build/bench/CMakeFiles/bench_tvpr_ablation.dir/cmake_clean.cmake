file(REMOVE_RECURSE
  "CMakeFiles/bench_tvpr_ablation.dir/bench_tvpr_ablation.cpp.o"
  "CMakeFiles/bench_tvpr_ablation.dir/bench_tvpr_ablation.cpp.o.d"
  "bench_tvpr_ablation"
  "bench_tvpr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tvpr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
