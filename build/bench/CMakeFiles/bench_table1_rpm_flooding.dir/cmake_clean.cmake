file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rpm_flooding.dir/bench_table1_rpm_flooding.cpp.o"
  "CMakeFiles/bench_table1_rpm_flooding.dir/bench_table1_rpm_flooding.cpp.o.d"
  "bench_table1_rpm_flooding"
  "bench_table1_rpm_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rpm_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
