# Empty dependencies file for bench_table1_rpm_flooding.
# This may be replaced when dependencies are built.
