# Empty dependencies file for bench_fig2_dapp_throughput.
# This may be replaced when dependencies are built.
