# Empty dependencies file for bench_micro_evm.
# This may be replaced when dependencies are built.
