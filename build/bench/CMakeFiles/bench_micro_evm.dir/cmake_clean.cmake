file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_evm.dir/bench_micro_evm.cpp.o"
  "CMakeFiles/bench_micro_evm.dir/bench_micro_evm.cpp.o.d"
  "bench_micro_evm"
  "bench_micro_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
