# Empty dependencies file for bench_ablation_byzantine.
# This may be replaced when dependencies are built.
