file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pool.dir/bench_micro_pool.cpp.o"
  "CMakeFiles/bench_micro_pool.dir/bench_micro_pool.cpp.o.d"
  "bench_micro_pool"
  "bench_micro_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
