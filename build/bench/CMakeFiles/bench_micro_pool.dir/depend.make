# Empty dependencies file for bench_micro_pool.
# This may be replaced when dependencies are built.
