file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_u256.dir/bench_micro_u256.cpp.o"
  "CMakeFiles/bench_micro_u256.dir/bench_micro_u256.cpp.o.d"
  "bench_micro_u256"
  "bench_micro_u256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_u256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
