# Empty dependencies file for bench_micro_u256.
# This may be replaced when dependencies are built.
