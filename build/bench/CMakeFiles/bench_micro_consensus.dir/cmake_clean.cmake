file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_consensus.dir/bench_micro_consensus.cpp.o"
  "CMakeFiles/bench_micro_consensus.dir/bench_micro_consensus.cpp.o.d"
  "bench_micro_consensus"
  "bench_micro_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
