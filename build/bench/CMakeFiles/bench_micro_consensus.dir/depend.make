# Empty dependencies file for bench_micro_consensus.
# This may be replaced when dependencies are built.
