file(REMOVE_RECURSE
  "CMakeFiles/flooding_attack.dir/flooding_attack.cpp.o"
  "CMakeFiles/flooding_attack.dir/flooding_attack.cpp.o.d"
  "flooding_attack"
  "flooding_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
