# Empty dependencies file for flooding_attack.
# This may be replaced when dependencies are built.
