# Empty compiler generated dependencies file for dapp_exchange.
# This may be replaced when dependencies are built.
