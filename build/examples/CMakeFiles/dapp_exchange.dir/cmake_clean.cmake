file(REMOVE_RECURSE
  "CMakeFiles/dapp_exchange.dir/dapp_exchange.cpp.o"
  "CMakeFiles/dapp_exchange.dir/dapp_exchange.cpp.o.d"
  "dapp_exchange"
  "dapp_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapp_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
