file(REMOVE_RECURSE
  "CMakeFiles/censorship_loadbalancer.dir/censorship_loadbalancer.cpp.o"
  "CMakeFiles/censorship_loadbalancer.dir/censorship_loadbalancer.cpp.o.d"
  "censorship_loadbalancer"
  "censorship_loadbalancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censorship_loadbalancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
