# Empty dependencies file for censorship_loadbalancer.
# This may be replaced when dependencies are built.
